"""Engines threaded through verify_system / pipeline / run / certificate."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import (
    VerificationPipeline,
    get_scenario,
    run,
    run_batch,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
)
from repro.barrier import SynthesisConfig, verify_system
from repro.engine import Engine, get_engine, register_engine, unregister_engine
from repro.errors import ReproError


@pytest.fixture(scope="module")
def linear_problem():
    return get_scenario("linear").problem()


class TestVerifySystem:
    def test_engine_by_name(self, linear_problem):
        report = verify_system(linear_problem, engine="vectorized")
        assert report.verified

    def test_engine_via_config(self, linear_problem):
        report = verify_system(
            linear_problem, config=SynthesisConfig(engine="parallel-smt")
        )
        assert report.verified

    def test_engine_object(self, linear_problem):
        report = verify_system(linear_problem, engine=get_engine("vectorized"))
        assert report.verified

    def test_unknown_engine_raises(self, linear_problem):
        with pytest.raises(ReproError, match="unknown engine"):
            verify_system(linear_problem, engine="warp-drive")

    def test_all_builtin_engines_agree_on_linear(self, linear_problem):
        reports = {
            name: verify_system(linear_problem, engine=name)
            for name in ("native", "vectorized", "parallel-smt")
        }
        levels = {name: r.level for name, r in reports.items()}
        assert all(r.verified for r in reports.values())
        # parallel-smt shares the native sim + LP: bit-identical level.
        assert levels["parallel-smt"] == levels["native"]
        # vectorized integrates the same grid to float accuracy.
        assert levels["vectorized"] == pytest.approx(levels["native"], rel=1e-6)

    def test_certificate_verify_accepts_engine(self, linear_problem):
        report = verify_system(linear_problem)
        check = report.certificate.verify(engine="parallel-smt")
        assert check.all_unsat


class TestPipelineAndRun:
    def test_pipeline_engine_param(self, linear_problem):
        outcome = VerificationPipeline(engine="vectorized").run(linear_problem)
        assert outcome.verified
        assert set(outcome.report.stage_seconds) >= {"seed-sim", "lp-fit"}

    def test_run_records_engine_name(self):
        artifact = run("linear", engine="vectorized")
        assert artifact.engine == "vectorized"
        assert artifact.verified

    def test_scenario_engine_override(self):
        scenario = get_scenario("linear").with_engine("parallel-smt")
        artifact = run(scenario)
        assert artifact.engine == "parallel-smt"
        # explicit argument beats the scenario override
        artifact = run(scenario, engine="native")
        assert artifact.engine == "native"

    def test_run_batch_engine(self):
        artifacts = run_batch(["linear", "vanderpol"], workers=2, engine="vectorized")
        assert [a.engine for a in artifacts] == ["vectorized", "vectorized"]
        assert all(a.verified for a in artifacts)

    def test_user_registered_engine_reaches_workers(self):
        base = get_engine("native")
        custom = Engine(
            name="session-engine",
            description="registered only in this process",
            sim=base.sim,
            lp=base.lp,
            smt=base.smt,
        )
        register_engine(custom)
        try:
            artifacts = run_batch(
                ["linear", "vanderpol"], workers=2, engine="session-engine"
            )
        finally:
            unregister_engine("session-engine")
        assert [a.engine for a in artifacts] == ["session-engine"] * 2
        assert all(a.verified for a in artifacts)

    def test_scenario_level_session_engine_reaches_workers(self):
        """Scenario.engine naming a user-registered engine must resolve
        in the parent, before fan-out — workers never see the name."""
        base = get_engine("native")
        register_engine(
            Engine(
                name="scenario-session-engine",
                description="",
                sim=base.sim,
                lp=base.lp,
                smt=base.smt,
            )
        )
        try:
            scenario = get_scenario("linear").with_engine(
                "scenario-session-engine"
            )
            artifacts = run_batch([scenario, "vanderpol"], workers=2)
        finally:
            unregister_engine("scenario-session-engine")
        assert artifacts[0].engine == "scenario-session-engine"
        assert artifacts[0].error is None and artifacts[0].verified
        assert artifacts[1].engine == "native"

    def test_unknown_engine_fails_fast_in_batch(self):
        with pytest.raises(ReproError, match="unknown engine"):
            run_batch(["linear"], engine="warp-drive")


class TestConfigSerialization:
    def test_engine_name_round_trips(self):
        config = SynthesisConfig(engine="vectorized")
        data = synthesis_config_to_dict(config)
        assert data["engine"] == "vectorized"
        assert synthesis_config_from_dict(data).engine == "vectorized"

    def test_engine_object_flattens_to_name(self):
        config = dataclasses.replace(
            SynthesisConfig(), engine=get_engine("parallel-smt")
        )
        data = synthesis_config_to_dict(config)
        assert data["engine"] == "parallel-smt"

    def test_legacy_dict_without_engine_defaults_native(self):
        data = synthesis_config_to_dict(SynthesisConfig())
        data.pop("engine")
        assert synthesis_config_from_dict(data).engine == "native"


class TestNativeBitIdentity:
    """The default engine must reproduce the pre-engine outputs exactly."""

    def test_dubins_native_levels_identical_across_engel_paths(self):
        config = SynthesisConfig(seed=1)
        direct = verify_system(
            get_scenario("vanderpol").problem(), config=config
        )
        via_run = run("vanderpol", config=config)
        assert via_run.level == direct.level
        assert via_run.candidate_iterations == direct.candidate_iterations
        assert np.isclose(via_run.level, direct.level, rtol=0, atol=0)
