"""Feedforward neural networks (the paper's controller class).

A :class:`FeedforwardNetwork` is a stack of dense layers, each an affine
map followed by an activation.  The paper's controller is the two-layer
shape ``2 -> Nh (tansig) -> 1 (linear)``; :func:`controller_network`
builds exactly that and checks the ``4*Nh + 1`` parameter count from
Section 4.2.

Three coherent evaluation semantics are exposed:

* :meth:`FeedforwardNetwork.forward` — batched numpy evaluation;
* :meth:`FeedforwardNetwork.symbolic_outputs` — expression-level
  composition used to build the closed-loop vector field for the SMT
  queries;
* :meth:`FeedforwardNetwork.interval_forward` — vectorized sound output
  bounds over input boxes (used for quick screening and tests; the ICP
  solver itself consumes the symbolic form through compiled tapes).

Parameters are exposed as one flat vector (:meth:`get_parameters` /
:meth:`set_parameters`) because the CMA-ES policy search optimizes the
network in that representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ReproError
from ..expr import Expr, as_expr, dot
from ..intervals.functions import interval_affine
from .activations import Activation, get_activation

__all__ = ["Layer", "FeedforwardNetwork", "controller_network"]


@dataclass
class Layer:
    """One dense layer: ``activation(weights @ x + biases)``.

    ``weights`` has shape ``(fan_out, fan_in)``; ``biases`` has shape
    ``(fan_out,)``.
    """

    weights: np.ndarray
    biases: np.ndarray
    activation: Activation

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.biases = np.asarray(self.biases, dtype=float)
        self.activation = get_activation(self.activation)
        if self.weights.ndim != 2:
            raise ReproError(f"layer weights must be 2-D, got shape {self.weights.shape}")
        if self.biases.shape != (self.weights.shape[0],):
            raise ReproError(
                f"bias shape {self.biases.shape} does not match "
                f"{self.weights.shape[0]} output neurons"
            )

    @property
    def fan_in(self) -> int:
        """Input dimension."""
        return self.weights.shape[1]

    @property
    def fan_out(self) -> int:
        """Output dimension (number of neurons)."""
        return self.weights.shape[0]

    @property
    def parameter_count(self) -> int:
        """Weights plus biases."""
        return self.weights.size + self.biases.size


class FeedforwardNetwork:
    """A stateless feedforward network ``u = h(y)``.

    Parameters
    ----------
    layers:
        Dense layers; each layer's ``fan_in`` must equal the previous
        layer's ``fan_out``.
    """

    def __init__(self, layers: Iterable[Layer]):
        self.layers = list(layers)
        if not self.layers:
            raise ReproError("a network needs at least one layer")
        for previous, current in zip(self.layers, self.layers[1:]):
            if current.fan_in != previous.fan_out:
                raise ReproError(
                    f"layer size mismatch: {previous.fan_out} outputs feed "
                    f"{current.fan_in} inputs"
                )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def input_dimension(self) -> int:
        """Dimension of the network input ``y``."""
        return self.layers[0].fan_in

    @property
    def output_dimension(self) -> int:
        """Dimension of the network output ``u``."""
        return self.layers[-1].fan_out

    @property
    def hidden_sizes(self) -> list[int]:
        """Neurons per hidden layer (excludes the output layer)."""
        return [layer.fan_out for layer in self.layers[:-1]]

    @property
    def parameter_count(self) -> int:
        """Total number of weights and biases."""
        return sum(layer.parameter_count for layer in self.layers)

    def is_smooth(self) -> bool:
        """True when every activation is differentiable everywhere."""
        return all(layer.activation.smooth for layer in self.layers)

    # ------------------------------------------------------------------
    # Numeric semantics
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate the network.

        ``inputs`` of shape ``(n,)`` returns ``(m,)``; shape ``(b, n)``
        returns ``(b, m)``.
        """
        x = np.asarray(inputs, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.input_dimension:
            raise ReproError(
                f"input dimension {x.shape[1]} != network input "
                f"{self.input_dimension}"
            )
        for layer in self.layers:
            x = layer.activation.numeric(x @ layer.weights.T + layer.biases)
        return x[0] if single else x

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------------
    # Symbolic semantics
    # ------------------------------------------------------------------
    def symbolic_outputs(self, inputs: Sequence["Expr | float"]) -> list[Expr]:
        """Network outputs as expressions of the given input expressions.

        Sums are built as balanced trees (logarithmic depth), so even a
        thousand-neuron hidden layer produces an expression the solver
        tape can evaluate efficiently.
        """
        if len(inputs) != self.input_dimension:
            raise ReproError(
                f"{len(inputs)} symbolic inputs given, network expects "
                f"{self.input_dimension}"
            )
        values: list[Expr] = [as_expr(v) for v in inputs]
        for layer in self.layers:
            next_values = []
            for row, bias in zip(layer.weights, layer.biases):
                pre = dot(row, values)
                if bias != 0.0:
                    pre = pre + float(bias)
                next_values.append(layer.activation.symbolic(pre))
            values = next_values
        return values

    # ------------------------------------------------------------------
    # Interval semantics
    # ------------------------------------------------------------------
    def interval_forward(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sound output bounds for inputs in the box ``[lower, upper]``."""
        lo = np.asarray(lower, dtype=float)
        hi = np.asarray(upper, dtype=float)
        if lo.shape != (self.input_dimension,) or hi.shape != lo.shape:
            raise ReproError(
                f"expected bound vectors of shape ({self.input_dimension},)"
            )
        if np.any(lo > hi):
            raise ReproError("lower bound exceeds upper bound")
        for layer in self.layers:
            lo, hi = interval_affine(layer.weights, layer.biases, lo, hi)
            lo, hi = layer.activation.interval(lo, hi)
        return lo, hi

    # ------------------------------------------------------------------
    # Flat parameter vector (for CMA-ES)
    # ------------------------------------------------------------------
    def get_parameters(self) -> np.ndarray:
        """Concatenation of all weights (row-major) and biases, per layer."""
        chunks = []
        for layer in self.layers:
            chunks.append(layer.weights.ravel())
            chunks.append(layer.biases.ravel())
        return np.concatenate(chunks)

    def set_parameters(self, parameters: np.ndarray) -> None:
        """Load a flat vector produced by :meth:`get_parameters`."""
        parameters = np.asarray(parameters, dtype=float)
        if parameters.shape != (self.parameter_count,):
            raise ReproError(
                f"expected {self.parameter_count} parameters, got "
                f"{parameters.shape}"
            )
        offset = 0
        for layer in self.layers:
            w_size = layer.weights.size
            layer.weights = parameters[offset : offset + w_size].reshape(
                layer.weights.shape
            )
            offset += w_size
            b_size = layer.biases.size
            layer.biases = parameters[offset : offset + b_size].copy()
            offset += b_size

    def copy(self) -> "FeedforwardNetwork":
        """Deep copy (independent parameter arrays)."""
        return FeedforwardNetwork(
            Layer(layer.weights.copy(), layer.biases.copy(), layer.activation)
            for layer in self.layers
        )

    def __repr__(self) -> str:
        shape = " -> ".join(
            [str(self.input_dimension)]
            + [f"{layer.fan_out} ({layer.activation.name})" for layer in self.layers]
        )
        return f"<FeedforwardNetwork {shape}, {self.parameter_count} params>"


def controller_network(
    hidden_neurons: int,
    inputs: int = 2,
    outputs: int = 1,
    hidden_activation: "str | Activation" = "tansig",
    output_activation: "str | Activation" = "linear",
    rng: np.random.Generator | None = None,
    scale: float = 0.5,
) -> FeedforwardNetwork:
    """The paper's controller shape: ``inputs -> Nh (tansig) -> outputs``.

    With the default 2/1 input/output sizes the parameter count is the
    paper's ``4*Nh + 1``.  Weights are initialized uniformly in
    ``[-scale, scale]`` (a fresh default generator is used when ``rng``
    is omitted), matching the "random set of NN parameters" starting
    point of the policy search.
    """
    if hidden_neurons < 1:
        raise ReproError("hidden_neurons must be >= 1")
    rng = rng or np.random.default_rng()
    hidden = Layer(
        weights=rng.uniform(-scale, scale, size=(hidden_neurons, inputs)),
        biases=rng.uniform(-scale, scale, size=hidden_neurons),
        activation=get_activation(hidden_activation),
    )
    output = Layer(
        weights=rng.uniform(-scale, scale, size=(outputs, hidden_neurons)),
        biases=rng.uniform(-scale, scale, size=outputs),
        activation=get_activation(output_activation),
    )
    return FeedforwardNetwork([hidden, output])
