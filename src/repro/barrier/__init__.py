"""Barrier-certificate synthesis and verification — the paper's core.

Typical usage::

    from repro.barrier import (
        Rectangle, RectangleComplement, VerificationProblem,
        SynthesisConfig, verify_system,
    )
    from repro.dynamics import error_dynamics_system
    from repro.learning import proportional_controller_network

    network = proportional_controller_network(10)
    system = error_dynamics_system(network)
    problem = VerificationProblem(
        system,
        initial_set=Rectangle([-1.0, -math.pi / 16], [1.0, math.pi / 16]),
        unsafe_set=RectangleComplement(
            Rectangle([-5.0, -(math.pi / 2 - 0.1)], [5.0, math.pi / 2 - 0.1])
        ),
    )
    report = verify_system(problem)
    assert report.verified
"""

from .certificate import (
    BarrierCertificate,
    CertificateCheck,
    VerificationProblem,
    condition5_subproblems,
    condition6_subproblems,
    condition7_subproblems,
    lie_derivative_expr,
)
from .falsify import (
    FalsificationResult,
    falsify_cmaes,
    falsify_random,
    trajectory_robustness,
    witness_point,
)
from .levelset import (
    ellipsoid_bounding_rectangle,
    level_bounds,
    min_on_hyperplane,
    quadratic_forms,
)
from .lp import GeneratorCandidate, LpConfig, fit_generator, points_from_traces
from .lyapunov import linearize, lyapunov_candidate, symbolic_jacobian
from .sets import Halfspace, Rectangle, RectangleComplement, box_difference
from .synthesis import (
    PIPELINE_STAGES,
    StageEvent,
    StageObserver,
    SynthesisConfig,
    SynthesisReport,
    SynthesisStatus,
    verify_system,
)
from .templates import GeneratorTemplate, PolynomialTemplate, QuadraticTemplate

__all__ = [
    "BarrierCertificate",
    "CertificateCheck",
    "FalsificationResult",
    "GeneratorCandidate",
    "GeneratorTemplate",
    "Halfspace",
    "LpConfig",
    "PIPELINE_STAGES",
    "PolynomialTemplate",
    "QuadraticTemplate",
    "Rectangle",
    "RectangleComplement",
    "StageEvent",
    "StageObserver",
    "SynthesisConfig",
    "SynthesisReport",
    "SynthesisStatus",
    "VerificationProblem",
    "box_difference",
    "condition5_subproblems",
    "condition6_subproblems",
    "condition7_subproblems",
    "ellipsoid_bounding_rectangle",
    "falsify_cmaes",
    "falsify_random",
    "fit_generator",
    "level_bounds",
    "lie_derivative_expr",
    "linearize",
    "lyapunov_candidate",
    "min_on_hyperplane",
    "points_from_traces",
    "quadratic_forms",
    "symbolic_jacobian",
    "trajectory_robustness",
    "verify_system",
    "witness_point",
]
