"""Simulation traces.

A :class:`Trace` is the record of one closed-loop simulation: sampled
times, states, and (optionally) the controller outputs at each sample.
Traces feed the LP constraint generator (consecutive state pairs witness
the "decreases along trajectories" condition) and the experiment plots.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["Trace"]


class Trace:
    """Time-indexed states of one simulation run.

    Parameters
    ----------
    times:
        Strictly increasing sample times, shape ``(T,)``.
    states:
        States per sample, shape ``(T, n)``.
    inputs:
        Optional control inputs per sample, shape ``(T, m)``.
    truncated:
        True when the simulation stopped early (event or blow-up guard).
    """

    def __init__(
        self,
        times: np.ndarray,
        states: np.ndarray,
        inputs: np.ndarray | None = None,
        truncated: bool = False,
    ):
        self.times = np.asarray(times, dtype=float)
        self.states = np.atleast_2d(np.asarray(states, dtype=float))
        self.inputs = None if inputs is None else np.atleast_2d(np.asarray(inputs, dtype=float))
        self.truncated = truncated
        if self.times.ndim != 1:
            raise SimulationError("times must be 1-D")
        if self.states.shape[0] != self.times.shape[0]:
            raise SimulationError(
                f"{self.states.shape[0]} states for {self.times.shape[0]} times"
            )
        if self.inputs is not None and self.inputs.shape[0] != self.times.shape[0]:
            raise SimulationError(
                f"{self.inputs.shape[0]} inputs for {self.times.shape[0]} times"
            )
        if self.times.shape[0] >= 2 and not np.all(np.diff(self.times) > 0):
            raise SimulationError("times must be strictly increasing")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.times.shape[0]

    @property
    def dimension(self) -> int:
        """State dimension."""
        return self.states.shape[1]

    @property
    def initial_state(self) -> np.ndarray:
        """First state sample."""
        return self.states[0]

    @property
    def final_state(self) -> np.ndarray:
        """Last state sample."""
        return self.states[-1]

    @property
    def duration(self) -> float:
        """Elapsed simulated time."""
        return float(self.times[-1] - self.times[0])

    def state_at(self, t: float) -> np.ndarray:
        """Linear interpolation of the state at time ``t`` (clamped)."""
        t = float(np.clip(t, self.times[0], self.times[-1]))
        return np.array(
            [np.interp(t, self.times, self.states[:, j]) for j in range(self.dimension)]
        )

    def consecutive_pairs(self) -> Iterator[tuple[np.ndarray, np.ndarray, float]]:
        """Yield ``(x_k, x_{k+1}, dt_k)`` along the trace."""
        for k in range(len(self) - 1):
            yield self.states[k], self.states[k + 1], float(
                self.times[k + 1] - self.times[k]
            )

    def subsample(self, stride: int) -> "Trace":
        """Every ``stride``-th sample (always keeps the final sample)."""
        if stride < 1:
            raise SimulationError("stride must be >= 1")
        idx = list(range(0, len(self), stride))
        if idx[-1] != len(self) - 1:
            idx.append(len(self) - 1)
        return Trace(
            self.times[idx],
            self.states[idx],
            None if self.inputs is None else self.inputs[idx],
            self.truncated,
        )

    def max_norm(self) -> float:
        """Largest euclidean state norm along the trace."""
        return float(np.linalg.norm(self.states, axis=1).max())

    def __repr__(self) -> str:
        flag = ", truncated" if self.truncated else ""
        return (
            f"<Trace {len(self)} samples, dim {self.dimension}, "
            f"t=[{self.times[0]:g}, {self.times[-1]:g}]{flag}>"
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate_states(traces: Sequence["Trace"]) -> np.ndarray:
        """All states of all traces stacked into one ``(N, n)`` array."""
        if not traces:
            raise SimulationError("no traces to concatenate")
        return np.vstack([trace.states for trace in traces])
