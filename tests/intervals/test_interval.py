"""Unit and property tests for the scalar Interval type."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DomainError, EmptyIntervalError, IntervalError
from repro.intervals import Interval

FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw, lo=-1e6, hi=1e6):
    a = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    b = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_and_point(draw, lo=-1e6, hi=1e6):
    ival = draw(intervals(lo, hi))
    t = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    point = ival.lo + t * (ival.hi - ival.lo)
    point = min(max(point, ival.lo), ival.hi)
    return ival, point


class TestConstruction:
    def test_basic(self):
        ival = Interval(1.0, 2.0)
        assert ival.lo == 1.0
        assert ival.hi == 2.0

    def test_point(self):
        assert Interval.point(3.5).is_point()

    def test_reversed_bounds_raise(self):
        with pytest.raises(IntervalError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(IntervalError):
            Interval(math.nan, 1.0)
        with pytest.raises(IntervalError):
            Interval(0.0, math.nan)

    def test_entire(self):
        whole = Interval.entire()
        assert whole.lo == -math.inf
        assert whole.hi == math.inf

    def test_immutability(self):
        ival = Interval(0.0, 1.0)
        with pytest.raises(AttributeError):
            ival.lo = 5.0

    def test_hull_of(self):
        assert Interval.hull_of([3.0, -1.0, 2.0]) == Interval(-1.0, 3.0)

    def test_hull_of_empty_raises(self):
        with pytest.raises(IntervalError):
            Interval.hull_of([])

    def test_from_midpoint(self):
        ival = Interval.from_midpoint(1.0, 0.5)
        assert ival.contains(0.5)
        assert ival.contains(1.5)

    def test_from_midpoint_negative_radius(self):
        with pytest.raises(IntervalError):
            Interval.from_midpoint(0.0, -1.0)


class TestInspection:
    def test_width(self):
        assert Interval(1.0, 3.0).width() >= 2.0

    def test_width_unbounded(self):
        assert Interval(0.0, math.inf).width() == math.inf

    def test_midpoint_inside(self):
        ival = Interval(-2.0, 10.0)
        assert ival.contains(ival.midpoint())

    def test_midpoint_entire(self):
        assert Interval.entire().midpoint() == 0.0

    def test_midpoint_half_infinite(self):
        assert math.isfinite(Interval(3.0, math.inf).midpoint())
        assert math.isfinite(Interval(-math.inf, 3.0).midpoint())

    def test_magnitude_mignitude(self):
        ival = Interval(-3.0, 2.0)
        assert ival.magnitude() == 3.0
        assert ival.mignitude() == 0.0
        assert Interval(1.0, 2.0).mignitude() == 1.0

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert not Interval(0, 10).contains_interval(Interval(2, 30))

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 1).intersects(Interval(2, 3))
        assert Interval(0, 1).intersects(Interval(1, 2))  # touching


class TestLattice:
    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(EmptyIntervalError):
            Interval(0, 1).intersection(Interval(2, 3))

    def test_try_intersection_none(self):
        assert Interval(0, 1).try_intersection(Interval(2, 3)) is None

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_inflate(self):
        ival = Interval(0.0, 1.0).inflate(absolute=0.1)
        assert ival.lo <= -0.1
        assert ival.hi >= 1.1

    def test_split(self):
        left, right = Interval(0.0, 2.0).split()
        assert left.hi == right.lo
        assert left.lo == 0.0
        assert right.hi == 2.0

    def test_split_outside_raises(self):
        with pytest.raises(IntervalError):
            Interval(0.0, 1.0).split(5.0)


class TestArithmetic:
    def test_add(self):
        result = Interval(1, 2) + Interval(10, 20)
        assert result.contains(11.0) and result.contains(22.0)

    def test_add_scalar(self):
        assert (Interval(0, 1) + 5.0).contains(5.5)
        assert (5.0 + Interval(0, 1)).contains(5.5)

    def test_sub(self):
        result = Interval(1, 2) - Interval(0, 1)
        assert result.contains(0.0) and result.contains(2.0)

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_mul_signs(self):
        assert (Interval(-2, 3) * Interval(-1, 1)).contains(-3.0)
        assert (Interval(2, 3) * Interval(4, 5)).contains(15.0)

    def test_mul_with_infinite(self):
        result = Interval(0, 1) * Interval(0, math.inf)
        assert result.contains(0.0)
        assert result.hi == math.inf

    def test_div(self):
        result = Interval(1, 2) / Interval(2, 4)
        assert result.contains(0.25) and result.contains(1.0)

    def test_div_by_zero_spanning(self):
        assert Interval(1, 2) / Interval(-1, 1) == Interval.entire()

    def test_div_by_zero_point_raises(self):
        with pytest.raises(DomainError):
            Interval(1, 2) / Interval.point(0.0)

    def test_div_one_sided_zero(self):
        result = Interval(1, 2) / Interval(0.0, 1.0)
        assert result.hi == math.inf
        assert result.contains(1.0)

    def test_reciprocal(self):
        rec = Interval(2, 4).reciprocal()
        assert rec.contains(0.25) and rec.contains(0.5)

    def test_pow_even_crossing_zero(self):
        sq = Interval(-2, 3) ** 2
        assert sq.lo == 0.0
        assert sq.contains(9.0)

    def test_pow_odd(self):
        cube = Interval(-2, 3) ** 3
        assert cube.contains(-8.0) and cube.contains(27.0)

    def test_pow_zero(self):
        assert Interval(-5, 5) ** 0 == Interval.point(1.0)

    def test_pow_negative(self):
        inv_sq = Interval(1, 2) ** (-2)
        assert inv_sq.contains(0.25) and inv_sq.contains(1.0)

    def test_pow_non_integer_rejected(self):
        with pytest.raises(IntervalError):
            Interval(1, 2) ** 1.5  # type: ignore[operator]

    def test_abs(self):
        assert Interval(-3, 2).abs() == Interval(0.0, 3.0)
        assert Interval(1, 2).abs() == Interval(1, 2)
        assert Interval(-2, -1).abs() == Interval(1, 2)

    def test_min_max_with(self):
        a = Interval(0, 5)
        b = Interval(3, 4)
        assert a.min_with(b) == Interval(0, 4)
        assert a.max_with(b) == Interval(3, 5)

    def test_extended_divide_spanning(self):
        pieces = Interval(1, 2).extended_divide(Interval(-1, 1))
        assert len(pieces) == 2
        # 1/0.5 = 2 must be covered by the positive piece.
        assert any(p.contains(2.0) for p in pieces)
        assert any(p.contains(-2.0) for p in pieces)

    def test_extended_divide_zero_denominator(self):
        assert Interval(1, 2).extended_divide(Interval.point(0.0)) == []
        pieces = Interval(-1, 1).extended_divide(Interval.point(0.0))
        assert pieces == [Interval.entire()]


class TestElementaryFunctions:
    def test_sqrt(self):
        ival = Interval(4, 9).sqrt()
        assert ival.contains(2.0) and ival.contains(3.0)

    def test_sqrt_negative_raises(self):
        with pytest.raises(DomainError):
            Interval(-2, -1).sqrt()

    def test_sqrt_clips_partial(self):
        ival = Interval(-1, 4).sqrt()
        assert ival.lo == 0.0
        assert ival.contains(2.0)

    def test_exp_log_inverse(self):
        ival = Interval(0.5, 2.0)
        round_trip = ival.exp().log()
        assert round_trip.contains_interval(ival)

    def test_log_nonpositive_raises(self):
        with pytest.raises(DomainError):
            Interval(-2, -1).log()

    def test_tanh_range(self):
        ival = Interval(-100, 100).tanh()
        assert ival.lo >= -1.0
        assert ival.hi <= 1.0

    def test_sigmoid_range(self):
        ival = Interval(-100, 100).sigmoid()
        assert 0.0 <= ival.lo <= ival.hi <= 1.0

    def test_sin_full_period(self):
        assert Interval(0, 7).sin() == Interval(-1, 1)

    def test_sin_no_critical(self):
        ival = Interval(0.1, 0.2).sin()
        assert ival.contains(math.sin(0.15))
        assert ival.hi < 0.21

    def test_sin_contains_max(self):
        ival = Interval(1.0, 2.0).sin()  # pi/2 inside
        assert ival.hi == 1.0

    def test_cos_contains_min(self):
        ival = Interval(3.0, 3.3).cos()  # pi inside
        assert ival.lo == -1.0

    def test_tan_pole(self):
        assert Interval(1.0, 2.0).tan() == Interval.entire()

    def test_tan_monotone_piece(self):
        ival = Interval(-0.5, 0.5).tan()
        assert ival.contains(math.tan(0.3))
        assert ival.is_finite()

    def test_atan_monotone(self):
        ival = Interval(-1, 1).atan()
        assert ival.contains(math.atan(0.5))


# ----------------------------------------------------------------------
# Property-based: inclusion soundness of every operation.
# ----------------------------------------------------------------------
class TestInclusionProperties:
    @given(interval_and_point(), interval_and_point())
    def test_add_inclusion(self, ap, bp):
        (a, x), (b, y) = ap, bp
        assert (a + b).contains(x + y)

    @given(interval_and_point(), interval_and_point())
    def test_sub_inclusion(self, ap, bp):
        (a, x), (b, y) = ap, bp
        assert (a - b).contains(x - y)

    @given(interval_and_point(-1e3, 1e3), interval_and_point(-1e3, 1e3))
    def test_mul_inclusion(self, ap, bp):
        (a, x), (b, y) = ap, bp
        assert (a * b).contains(x * y)

    @given(interval_and_point(-1e3, 1e3), interval_and_point(-1e3, 1e3))
    def test_div_inclusion(self, ap, bp):
        (a, x), (b, y) = ap, bp
        if y == 0.0 or (b.lo == 0.0 and b.hi == 0.0):
            return
        assert (a / b).contains(x / y)

    @given(interval_and_point(-50, 50), st.integers(min_value=0, max_value=6))
    def test_pow_inclusion(self, ap, n):
        a, x = ap
        assert (a**n).contains(x**n)

    @given(interval_and_point(-20, 20))
    def test_sin_inclusion(self, ap):
        a, x = ap
        assert a.sin().contains(math.sin(x))

    @given(interval_and_point(-20, 20))
    def test_cos_inclusion(self, ap):
        a, x = ap
        assert a.cos().contains(math.cos(x))

    @given(interval_and_point(-30, 30))
    def test_tanh_inclusion(self, ap):
        a, x = ap
        assert a.tanh().contains(math.tanh(x))

    @given(interval_and_point(-30, 30))
    def test_sigmoid_inclusion(self, ap):
        a, x = ap
        sig = 1.0 / (1.0 + math.exp(-x)) if x >= 0 else math.exp(x) / (1 + math.exp(x))
        assert a.sigmoid().contains(sig)

    @given(interval_and_point(-50, 50))
    def test_exp_inclusion(self, ap):
        a, x = ap
        assert a.exp().contains(math.exp(x))

    @given(interval_and_point(1e-6, 1e6))
    def test_log_inclusion(self, ap):
        a, x = ap
        assert a.log().contains(math.log(x))

    @given(interval_and_point(0.0, 1e6))
    def test_sqrt_inclusion(self, ap):
        a, x = ap
        assert a.sqrt().contains(math.sqrt(x))

    @given(interval_and_point(-100, 100))
    def test_abs_inclusion(self, ap):
        a, x = ap
        assert a.abs().contains(abs(x))

    @given(interval_and_point(-100, 100))
    def test_atan_inclusion(self, ap):
        a, x = ap
        assert a.atan().contains(math.atan(x))

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.contains_interval(a)
        assert h.contains_interval(b)

    @given(interval_and_point(-5, 5), interval_and_point(-5, 5))
    def test_tan_inclusion(self, ap, bp):
        a, x = ap
        try:
            value = math.tan(x)
        except ValueError:  # pragma: no cover
            return
        assert a.tan().contains(value)
