"""A small library of benchmark plants.

These plants exercise the generic composition path
(:func:`repro.dynamics.closed_loop.compose`) beyond the paper's Dubins
case study: a linear system with a known analytic barrier (ground truth
for tests), the torque-limited inverted pendulum, and the Van der Pol
oscillator run backwards (a classic unsafe-set benchmark).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..expr import Expr, cos, exp, sin, tan, var
from .closed_loop import Plant
from .errors_dynamics import error_field_exprs
from .system import ContinuousSystem

__all__ = [
    "ackermann_plant",
    "cartpole_plant",
    "dubins_error_plant",
    "inverted_pendulum_plant",
    "kinematic_bicycle_plant",
    "linear_plant",
    "planar_quadrotor_plant",
    "stable_linear_system",
    "unicycle_plant",
    "van_der_pol_system",
]


def linear_plant(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    state_prefix: str = "x",
    input_prefix: str = "u",
) -> Plant:
    """``x' = A x + B u`` with full-state output."""
    a_matrix = np.asarray(a_matrix, dtype=float)
    b_matrix = np.asarray(b_matrix, dtype=float)
    if a_matrix.ndim != 2 or a_matrix.shape[0] != a_matrix.shape[1]:
        raise ReproError(f"A must be square, got {a_matrix.shape}")
    n = a_matrix.shape[0]
    if b_matrix.shape[0] != n:
        raise ReproError(f"B has {b_matrix.shape[0]} rows, expected {n}")
    m = b_matrix.shape[1]
    states = [var(f"{state_prefix}{i}") for i in range(n)]
    inputs = [var(f"{input_prefix}{j}") for j in range(m)]
    exprs: list[Expr] = []
    for i in range(n):
        terms: Expr = sum(
            (float(a_matrix[i, j]) * states[j] for j in range(n)),
            start=0.0 * states[0],
        )
        for j in range(m):
            if b_matrix[i, j] != 0.0:
                terms = terms + float(b_matrix[i, j]) * inputs[j]
        exprs.append(terms)
    return Plant(
        state_names=[s.name for s in states],
        input_names=[u.name for u in inputs],
        field_exprs=exprs,
        name="linear",
    )


def stable_linear_system(
    a_matrix: "np.ndarray | Sequence[Sequence[float]]",
    state_prefix: str = "x",
) -> ContinuousSystem:
    """Autonomous linear system ``x' = A x`` (no controller).

    With Hurwitz ``A``, any Lyapunov solution ``P`` of
    ``A^T P + P A = -Q`` gives the analytic generator function
    ``W(x) = x^T P x`` — the test suite's ground truth.
    """
    a_matrix = np.asarray(a_matrix, dtype=float)
    if a_matrix.ndim != 2 or a_matrix.shape[0] != a_matrix.shape[1]:
        raise ReproError(f"A must be square, got {a_matrix.shape}")
    n = a_matrix.shape[0]
    states = [var(f"{state_prefix}{i}") for i in range(n)]
    exprs = []
    for i in range(n):
        expr: Expr = sum(
            (float(a_matrix[i, j]) * states[j] for j in range(n) if a_matrix[i, j] != 0.0),
            start=0.0 * states[0],
        )
        exprs.append(expr)

    def numeric(x: np.ndarray) -> np.ndarray:
        return a_matrix @ x

    return ContinuousSystem(
        state_names=[s.name for s in states],
        field_exprs=exprs,
        numeric_override=numeric,
        name="linear-autonomous",
    )


def inverted_pendulum_plant(
    mass: float = 0.5,
    length: float = 0.5,
    gravity: float = 9.81,
    damping: float = 0.1,
) -> Plant:
    """Torque-controlled inverted pendulum about the upright equilibrium.

    States ``(theta, omega)``; dynamics
    ``theta' = omega``,
    ``omega' = (g/l) sin(theta) - (b/(m l^2)) omega + u/(m l^2)``.
    """
    if mass <= 0 or length <= 0:
        raise ReproError("mass and length must be positive")
    theta, omega, torque = var("theta"), var("omega"), var("torque")
    inertia = mass * length * length
    exprs = [
        omega,
        (gravity / length) * sin(theta)
        - (damping / inertia) * omega
        + (1.0 / inertia) * torque,
    ]
    return Plant(
        state_names=["theta", "omega"],
        input_names=["torque"],
        field_exprs=exprs,
        name="inverted-pendulum",
    )


def van_der_pol_system(mu: float = 1.0, reversed_time: bool = True) -> ContinuousSystem:
    """Van der Pol oscillator; reversed time makes the origin attractive.

    ``x' = -y``, ``y' = x - mu (1 - x^2) y`` (reversed).  A standard
    barrier-certificate benchmark: the reversed system's basin is bounded
    by the (unstable) limit cycle.
    """
    x, y = var("x0"), var("x1")
    if reversed_time:
        exprs = [-1.0 * y, x - mu * (1.0 - x * x) * y]
    else:
        exprs = [y, mu * (1.0 - x * x) * y - x]

    def numeric(state: np.ndarray) -> np.ndarray:
        xv, yv = state
        if reversed_time:
            return np.array([-yv, xv - mu * (1.0 - xv * xv) * yv])
        return np.array([yv, mu * (1.0 - xv * xv) * yv - xv])

    return ContinuousSystem(
        state_names=["x0", "x1"],
        field_exprs=exprs,
        numeric_override=numeric,
        name="van-der-pol" + ("-reversed" if reversed_time else ""),
    )


def kinematic_bicycle_plant(speed: float = 1.0, wheelbase: float = 1.0) -> Plant:
    """Lane-keeping error dynamics of a kinematic bicycle.

    The closest benchmark to the paper's autonomous-driving setting:
    states are the lateral offset ``ey`` from the lane center and the
    heading error ``epsi`` against the (straight) lane; the steering
    angle ``delta`` is the input.

    ``ey'   = V sin(epsi)``,
    ``epsi' = (V / L) tan(delta)``.

    A saturating NN controller keeps ``delta`` well inside
    ``(-pi/2, pi/2)``, so the ``tan`` never meets its pole on the closed
    loop.
    """
    if speed <= 0 or wheelbase <= 0:
        raise ReproError("speed and wheelbase must be positive")
    epsi, delta = var("epsi"), var("delta")
    exprs = [
        speed * sin(epsi),
        (speed / wheelbase) * tan(delta),
    ]
    return Plant(
        state_names=["ey", "epsi"],
        input_names=["delta"],
        field_exprs=exprs,
        name="kinematic-bicycle",
    )


def cartpole_plant(
    cart_mass: float = 1.0,
    pole_mass: float = 0.1,
    pole_length: float = 0.5,
    gravity: float = 9.81,
    control: str = "force",
) -> Plant:
    """Frictionless cart-pole (inverted pendulum on a cart).

    States ``(pos, vel, theta, omega)`` with ``theta`` measured from the
    *upright* equilibrium (gravity destabilizing).

    ``control="force"`` uses the full Lagrangian dynamics with the
    horizontal force ``F`` as input:

    ``vel'   = (F + m sin(th) (l om^2 - g cos(th))) / (M + m sin^2(th))``,
    ``omega' = (-F cos(th) - m l om^2 cos(th) sin(th) + (M+m) g sin(th))
               / (l (M + m sin^2(th)))``.

    ``control="acceleration"`` is the feedback-linearized benchmark form
    (the cart tracks a commanded acceleration ``a``):

    ``vel' = a``,  ``omega' = (g sin(th) - a cos(th)) / l``.

    The rational force form exercises interval extended division but its
    quotient enclosures are too loose for tractable δ-SAT refutation;
    the acceleration form is what verification benchmarks use.
    """
    if cart_mass <= 0 or pole_mass <= 0 or pole_length <= 0:
        raise ReproError("masses and pole length must be positive")
    vel, theta, omega = var("vel"), var("theta"), var("omega")
    sin_th = sin(theta)
    cos_th = cos(theta)
    if control == "acceleration":
        acc = var("acc")
        exprs = [
            vel,
            1.0 * acc,
            omega,
            (gravity * sin_th - acc * cos_th) * (1.0 / pole_length),
        ]
        return Plant(
            state_names=["pos", "vel", "theta", "omega"],
            input_names=["acc"],
            field_exprs=exprs,
            name="cartpole-acc",
        )
    if control != "force":
        raise ReproError(f"unknown cartpole control mode {control!r}")
    force = var("force")
    denom = cart_mass + pole_mass * sin_th * sin_th
    exprs = [
        vel,
        (force + pole_mass * sin_th * (pole_length * omega * omega - gravity * cos_th))
        / denom,
        omega,
        (
            -1.0 * force * cos_th
            - pole_mass * pole_length * omega * omega * cos_th * sin_th
            + (cart_mass + pole_mass) * gravity * sin_th
        )
        / (pole_length * denom),
    ]
    return Plant(
        state_names=["pos", "vel", "theta", "omega"],
        input_names=["force"],
        field_exprs=exprs,
        name="cartpole",
    )


def ackermann_plant(
    speed: float = 1.0, wheelbase: float = 1.0, track: float = 0.8
) -> Plant:
    """Lane-keeping error dynamics with Ackermann steering geometry.

    The kinematic bicycle collapses both front wheels into one; Ackermann
    geometry keeps the finite track width ``w``, so the effective path
    curvature of the outer-wheel steering angle ``delta`` picks up a
    rational correction:

    ``ey'   = V sin(epsi)``,
    ``epsi' = (V / L) tan(delta) / (1 + (w / 2L) tan(delta))``.

    The quotient exercises interval extended division on the closed
    loop.  A saturating NN controller keeps ``delta`` well inside
    ``(-pi/2, pi/2)`` and far from the denominator's pole at
    ``tan(delta) = -2L/w``.
    """
    if speed <= 0 or wheelbase <= 0:
        raise ReproError("speed and wheelbase must be positive")
    if track <= 0 or track >= 2.0 * wheelbase:
        raise ReproError("track must satisfy 0 < track < 2*wheelbase")
    epsi, delta = var("epsi"), var("delta")
    ratio = track / (2.0 * wheelbase)
    exprs = [
        speed * sin(epsi),
        (speed / wheelbase) * tan(delta) / (1.0 + ratio * tan(delta)),
    ]
    return Plant(
        state_names=["ey", "epsi"],
        input_names=["delta"],
        field_exprs=exprs,
        name="ackermann",
    )


def unicycle_plant(
    speed: float = 1.0,
    corridor: float = 1.5,
    field_gain: float = 0.5,
    field_sharpness: float = 2.0,
) -> Plant:
    """Unicycle heading-error dynamics inside an obstacle-lined corridor.

    States are the lateral offset ``ey`` and heading error ``etheta``;
    the turn rate ``u`` is the input.  Walls at ``ey = ±corridor`` exert
    an exponential repulsive field on the heading —

    ``ey'     = V sin(etheta)``,
    ``etheta' = u - g (exp(-a (w - ey)) - exp(-a (w + ey)))``

    with gain ``g``, sharpness ``a``, and half-width ``w`` — the field
    steers the vehicle away from whichever wall is nearer and vanishes
    on the centerline.  ``field_gain=0`` recovers the plain unicycle.
    """
    if speed <= 0 or corridor <= 0:
        raise ReproError("speed and corridor must be positive")
    if field_gain < 0 or field_sharpness <= 0:
        raise ReproError("field_gain must be >= 0 and field_sharpness > 0")
    ey, etheta, u = var("ey"), var("etheta"), var("u")
    g, a, w = field_gain, field_sharpness, corridor
    field = -g * (exp(-a * (w - ey)) - exp(-a * (w + ey)))
    exprs = [speed * sin(etheta), u + field]
    return Plant(
        state_names=["ey", "etheta"],
        input_names=["u"],
        field_exprs=exprs,
        name="unicycle",
    )


def planar_quadrotor_plant(
    inertia: float = 0.1, gravity: float = 9.81
) -> Plant:
    """Near-hover planar quadrotor: lateral translation + attitude.

    The standard planar (2-D) quadrotor reduced about hover with thrust
    trimmed to weight: states are the lateral velocity ``vy``, roll
    ``theta``, and roll rate ``omega``; the differential rotor torque
    is the input.

    ``vy'    = -g tan(theta)``,
    ``theta' = omega``,
    ``omega' = torque / J``.

    Gravity makes the translational channel a destabilizing
    double-integrator cascade through ``tan`` — like the cart-pole, a
    quadratic template cannot certify the saturated closed loop, so
    registered scenarios cap the solver budget (a stress workload).
    """
    if inertia <= 0:
        raise ReproError("inertia must be positive")
    theta, omega, torque = var("theta"), var("omega"), var("torque")
    exprs = [
        -gravity * tan(theta),
        omega,
        (1.0 / inertia) * torque,
    ]
    return Plant(
        state_names=["vy", "theta", "omega"],
        input_names=["torque"],
        field_exprs=exprs,
        name="planar-quadrotor",
    )


def dubins_error_plant(speed: float = 1.0, theta_r: float = 0.0) -> Plant:
    """The error-dynamics plant with the steering input left open.

    Composing this with a 2-in/1-out network via
    :func:`repro.dynamics.compose` reproduces
    :func:`repro.dynamics.error_dynamics_system` — the integration tests
    assert both constructions agree.
    """
    u = var("u")
    exprs = error_field_exprs(u, speed=speed, theta_r=theta_r, simplified=True)
    return Plant(
        state_names=["derr", "thetaerr"],
        input_names=["u"],
        field_exprs=exprs,
        name="dubins-error",
    )
