"""Compiled ndarray kernels for expression tapes.

A :class:`~repro.expr.CompiledExpression` is already a flat instruction
tape, but its evaluators re-dispatch every instruction on every call:
string comparisons pick the op, ``np.full`` re-materializes every
constant, and fresh slot tables are allocated per pass.  On the narrow
frontiers real branch-and-prune searches produce, that per-call
interpreter overhead rivals the arithmetic itself.

:class:`KernelPlan` pre-plans a tape once into

* **integer opcode arrays** (``codes`` / ``out`` / ``arg1`` / ``arg2``)
  — the flat, slot-indexed program form, kept for introspection and
  debugging (execution runs over the closures below; both are derived
  from the same instruction tape in one constructor pass);
* a **constant table** (``const_slots`` / ``const_values``) whose rows
  are materialized once per pooled workspace and re-sliced per call;
* **prebound instruction closures** — one Python callable per
  instruction with its opcode, slot indices, and exponents baked in, so
  executing the tape is a plain loop over callables with zero per-call
  dict lookups or string dispatch;
* a :class:`~repro.perf.pool.BufferPool` of slot-table workspaces keyed
  by frontier-size bucket, so no per-call slot-table allocation.

The numeric semantics are *identical* to the interpreted evaluators —
each closure calls the same widening/interval helpers of
:mod:`repro.expr.compile` in the same order — so results are
bit-for-bit equal whether kernels are enabled or not (pinned by
``tests/perf/test_kernels.py`` and the scenario-level parity checks in
``benchmarks/test_synthesis_micro.py``).

Kernels are on by default; ``REPRO_KERNELS=0`` (or
:func:`set_enabled` / :func:`use_kernels`) restores the interpreted
paths, which is how the benchmarks measure the pre-kernel baseline in
the same process.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..expr.compile import (
    _HALF_PI,
    _interval_div,
    _interval_log,
    _interval_mul,
    _interval_pow,
    _interval_sin_cos,
    _interval_sqrt,
    _interval_tan,
    _sigmoid_array,
    _widen,
)
from .pool import BufferPool

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..expr import CompiledExpression

__all__ = [
    "OPCODES",
    "KernelPlan",
    "enabled",
    "set_enabled",
    "use_kernels",
]

#: op name -> integer opcode (the planned program's ``codes`` entries)
OPCODES: dict[str, int] = {
    name: code
    for code, name in enumerate(
        (
            "const", "var", "add", "sub", "mul", "div", "min", "max",
            "neg", "pow", "sin", "cos", "tan", "tanh", "sigmoid", "exp",
            "log", "sqrt", "abs", "atan",
        )
    )
}

_enabled = os.environ.get("REPRO_KERNELS", "1").strip().lower() not in (
    "0", "false", "off",
)


def enabled() -> bool:
    """True when tape evaluation routes through compiled kernels."""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Toggle the kernel layer globally; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


@contextlib.contextmanager
def use_kernels(on: bool) -> Iterator[None]:
    """Context manager pinning the kernel switch, restoring it on exit."""
    previous = set_enabled(on)
    try:
        yield
    finally:
        set_enabled(previous)


class KernelPlan:
    """One tape pre-planned into ndarray program form + closure programs.

    Build via :meth:`repro.expr.CompiledExpression.kernel`, which caches
    one plan per tape.  The plan owns its workspace pools, so concurrent
    evaluations (the thread-pool SMT backend) never share scratch state.
    """

    def __init__(self, tape: "CompiledExpression"):
        instructions = tape.instructions
        self.n_slots = tape.n_slots
        self.result_slot = tape.result_slot
        self.n_instructions = len(instructions)

        self.codes = np.empty(self.n_instructions, dtype=np.int16)
        self.out = np.empty(self.n_instructions, dtype=np.int32)
        self.arg1 = np.full(self.n_instructions, -1, dtype=np.int32)
        self.arg2 = np.full(self.n_instructions, -1, dtype=np.int32)
        const_slots: list[int] = []
        const_values: list[float] = []
        var_slots: list[int] = []
        for i, instr in enumerate(instructions):
            op, slot = instr[0], instr[1]
            self.codes[i] = OPCODES[op]
            self.out[i] = slot
            if op == "const":
                const_slots.append(slot)
                const_values.append(float(instr[2]))
            elif op == "var":
                self.arg1[i] = instr[2]
                var_slots.append(slot)
            else:
                self.arg1[i] = instr[2]
                if len(instr) > 3:
                    self.arg2[i] = instr[3]
        #: slots holding tape constants, and the constant table itself
        self.const_slots = np.asarray(const_slots, dtype=np.int32)
        self.const_values = np.asarray(const_values, dtype=np.float64)
        self._var_slots = var_slots
        self._result_const = next(
            (
                v
                for s, v in zip(const_slots, const_values)
                if s == self.result_slot
            ),
            None,
        )

        self._instructions = instructions
        self._box_program: list | None = None
        self._point_program: list | None = None
        self._box_pool = BufferPool(self.n_slots, init=self._init_workspace)
        self._point_pool = BufferPool(self.n_slots, init=self._init_workspace)

    # ------------------------------------------------------------------
    # Workspaces
    # ------------------------------------------------------------------
    def _init_workspace(self, ws) -> None:
        # One prefilled row per constant, materialized once per
        # workspace; calls re-slice to the live frontier width instead
        # of re-running np.full per constant per call.
        ws.data["rows"] = [
            np.full(ws.bucket, value) for value in self.const_values
        ]

    def _release(self, pool: BufferPool, ws) -> None:
        # Drop references to the caller's arrays (variable slots alias
        # the input frontier; keeping them would pin it in memory until
        # the workspace's next lease).
        slots = ws.slots
        for slot in self._var_slots:
            slots[slot] = None
        slots[self.result_slot] = None
        pool.release(ws)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def eval_boxes(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interval tape pass over ``(m, n_vars)`` bound arrays.

        Inputs must be pre-validated 2-D float arrays (the public
        entry point is :meth:`CompiledExpression.eval_boxes`, which
        validates and then dispatches here when kernels are enabled).
        """
        if self._box_program is None:
            self._box_program = _build_box_program(self._instructions)
        m = lower.shape[0]
        if self._result_const is not None:
            return np.full(m, self._result_const), np.full(m, self._result_const)
        ws = self._box_pool.acquire(m)
        try:
            vals = ws.slots
            rows = ws.data["rows"]
            for run in self._box_program:
                run(vals, lower, upper, rows, m)
            return vals[self.result_slot]
        finally:
            self._release(self._box_pool, ws)

    def eval_points(self, points: np.ndarray) -> np.ndarray:
        """Numeric tape pass over ``(m, n_vars)`` sample points."""
        if self._point_program is None:
            self._point_program = _build_point_program(self._instructions)
        m = points.shape[0]
        if self._result_const is not None:
            return np.full(m, self._result_const)
        ws = self._point_pool.acquire(m)
        try:
            vals = ws.slots
            rows = ws.data["rows"]
            for run in self._point_program:
                run(vals, points, rows, m)
            return vals[self.result_slot]
        finally:
            self._release(self._point_pool, ws)


# ----------------------------------------------------------------------
# Box (interval) instruction closures
#
# Each maker returns one callable with the instruction's slots baked in.
# The arithmetic mirrors repro.expr.compile._interval_op line for line,
# through the same helper functions, so kernel results are bit-identical
# to the interpreter's.
# ----------------------------------------------------------------------
def _build_box_program(instructions) -> list:
    program = []
    const_index = 0
    for instr in instructions:
        op = instr[0]
        if op == "const":
            program.append(_box_const(instr[1], const_index))
            const_index += 1
        elif op == "var":
            program.append(_box_var(instr[1], instr[2]))
        elif op in ("add", "sub", "mul", "div", "min", "max"):
            program.append(_box_binary(op, instr[1], instr[2], instr[3]))
        elif op == "pow":
            program.append(_box_pow(instr[1], instr[2], instr[3]))
        else:
            program.append(_box_unary(op, instr[1], instr[2]))
    return program


def _box_const(out: int, index: int):
    def run(vals, lower, upper, rows, m):
        row = rows[index][:m]
        vals[out] = (row, row)

    return run


def _box_var(out: int, column: int):
    def run(vals, lower, upper, rows, m):
        vals[out] = (lower[:, column], upper[:, column])

    return run


def _box_binary(op: str, out: int, left: int, right: int):
    if op == "add":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = _widen(alo + blo, ahi + bhi)
    elif op == "sub":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = _widen(alo - bhi, ahi - blo)
    elif op == "mul":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = _widen(*_interval_mul(alo, ahi, blo, bhi))
    elif op == "div":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = _widen(*_interval_div(alo, ahi, blo, bhi))
    elif op == "min":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = (np.minimum(alo, blo), np.minimum(ahi, bhi))
    else:  # max
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[left]
            blo, bhi = vals[right]
            vals[out] = (np.maximum(alo, blo), np.maximum(ahi, bhi))
    return run


def _box_pow(out: int, child: int, exponent: int):
    def run(vals, lower, upper, rows, m):
        alo, ahi = vals[child]
        vals[out] = _widen(*_interval_pow(alo, ahi, exponent))

    return run


def _box_unary(op: str, out: int, child: int):
    if op == "neg":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = (-ahi, -alo)
    elif op == "sin":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _interval_sin_cos(alo, ahi, peak_offset=_HALF_PI)
    elif op == "cos":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _interval_sin_cos(alo, ahi, peak_offset=0.0)
    elif op == "tan":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _interval_tan(alo, ahi)
    elif op == "tanh":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            lo, hi = _widen(np.tanh(alo), np.tanh(ahi))
            vals[out] = (np.maximum(lo, -1.0), np.minimum(hi, 1.0))
    elif op == "sigmoid":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            lo, hi = _widen(_sigmoid_array(alo), _sigmoid_array(ahi))
            vals[out] = (np.maximum(lo, 0.0), np.minimum(hi, 1.0))
    elif op == "exp":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            with np.errstate(over="ignore"):
                lo, hi = _widen(np.exp(alo), np.exp(ahi))
            vals[out] = (np.maximum(lo, 0.0), hi)
    elif op == "log":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _interval_log(alo, ahi)
    elif op == "sqrt":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _interval_sqrt(alo, ahi)
    elif op == "abs":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            both = np.maximum(np.abs(alo), np.abs(ahi))
            crosses = (alo < 0.0) & (ahi > 0.0)
            lo = np.where(crosses, 0.0, np.minimum(np.abs(alo), np.abs(ahi)))
            vals[out] = (lo, both)
    elif op == "atan":
        def run(vals, lower, upper, rows, m):
            alo, ahi = vals[child]
            vals[out] = _widen(np.arctan(alo), np.arctan(ahi))
    else:  # pragma: no cover - the op zoo is closed
        raise KeyError(f"unknown interval op {op!r}")
    return run


# ----------------------------------------------------------------------
# Point (numeric) instruction closures — mirrors _numeric_op
# ----------------------------------------------------------------------
def _build_point_program(instructions) -> list:
    program = []
    const_index = 0
    for instr in instructions:
        op = instr[0]
        if op == "const":
            program.append(_point_const(instr[1], const_index))
            const_index += 1
        elif op == "var":
            program.append(_point_var(instr[1], instr[2]))
        elif op in ("add", "sub", "mul", "div", "min", "max"):
            program.append(_point_binary(op, instr[1], instr[2], instr[3]))
        elif op == "pow":
            program.append(_point_pow(instr[1], instr[2], instr[3]))
        else:
            program.append(_point_unary(op, instr[1], instr[2]))
    return program


def _point_const(out: int, index: int):
    def run(vals, points, rows, m):
        vals[out] = rows[index][:m]

    return run


def _point_var(out: int, column: int):
    def run(vals, points, rows, m):
        vals[out] = points[:, column]

    return run


def _point_binary(op: str, out: int, left: int, right: int):
    if op == "add":
        def run(vals, points, rows, m):
            vals[out] = vals[left] + vals[right]
    elif op == "sub":
        def run(vals, points, rows, m):
            vals[out] = vals[left] - vals[right]
    elif op == "mul":
        def run(vals, points, rows, m):
            vals[out] = vals[left] * vals[right]
    elif op == "div":
        def run(vals, points, rows, m):
            with np.errstate(divide="ignore", invalid="ignore"):
                vals[out] = vals[left] / vals[right]
    elif op == "min":
        def run(vals, points, rows, m):
            vals[out] = np.minimum(vals[left], vals[right])
    else:  # max
        def run(vals, points, rows, m):
            vals[out] = np.maximum(vals[left], vals[right])
    return run


def _point_pow(out: int, child: int, exponent: int):
    def run(vals, points, rows, m):
        vals[out] = vals[child] ** exponent

    return run


_POINT_UFUNCS = {
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "tanh": np.tanh,
    "abs": np.abs,
    "atan": np.arctan,
    "exp": np.exp,
}


def _point_unary(op: str, out: int, child: int):
    ufunc = _POINT_UFUNCS.get(op)
    if ufunc is not None:
        def run(vals, points, rows, m):
            vals[out] = ufunc(vals[child])
    elif op == "neg":
        def run(vals, points, rows, m):
            vals[out] = -vals[child]
    elif op == "sigmoid":
        def run(vals, points, rows, m):
            vals[out] = _sigmoid_array(vals[child])
    elif op == "log":
        def run(vals, points, rows, m):
            with np.errstate(divide="ignore", invalid="ignore"):
                vals[out] = np.log(vals[child])
    elif op == "sqrt":
        def run(vals, points, rows, m):
            with np.errstate(invalid="ignore"):
                vals[out] = np.sqrt(vals[child])
    else:  # pragma: no cover - the op zoo is closed
        raise KeyError(f"unknown numeric op {op!r}")
    return run
