"""Path geometry and the paper's error-sign conventions (Section 4.1.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.dynamics import (
    PiecewiseLinearPath,
    StraightLinePath,
    heading_vector,
)

ANGLE = st.floats(min_value=-math.pi + 0.01, max_value=math.pi - 0.01)


class TestHeadingVector:
    def test_north_at_zero(self):
        """theta = 0 points along +y (Figure 3a)."""
        assert np.allclose(heading_vector(0.0), [0.0, 1.0])

    def test_east_at_half_pi(self):
        """Clockwise convention: theta = pi/2 points along +x."""
        assert np.allclose(heading_vector(math.pi / 2), [1.0, 0.0], atol=1e-12)

    def test_unit_norm(self):
        for theta in np.linspace(-3, 3, 7):
            assert np.linalg.norm(heading_vector(theta)) == pytest.approx(1.0)


class TestStraightLine:
    def test_eq12_matches(self):
        """d_err must equal Eq. 12: -xv cos(theta_r) + yv sin(theta_r)."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            theta_r = rng.uniform(-1.4, 1.4)
            path = StraightLinePath(theta_r)
            xv, yv = rng.uniform(-5, 5, size=2)
            errors = path.errors([xv, yv], theta_v=0.0)
            eq12 = -xv * math.cos(theta_r) + yv * math.sin(theta_r)
            assert errors.d_err == pytest.approx(eq12, abs=1e-9)

    def test_left_is_positive(self):
        """Vehicle left of a northbound path (x < 0) has d_err > 0."""
        path = StraightLinePath(theta_r=0.0)
        assert path.errors([-1.0, 5.0], 0.0).d_err == pytest.approx(1.0)
        assert path.errors([2.0, -3.0], 0.0).d_err == pytest.approx(-2.0)

    def test_angle_error_eq11(self):
        """theta_err = theta_r - theta_v (Eq. 11)."""
        path = StraightLinePath(theta_r=0.3)
        errors = path.errors([0.0, 0.0], theta_v=0.1)
        assert errors.theta_err == pytest.approx(0.2)

    def test_angle_error_wraps(self):
        path = StraightLinePath(theta_r=3.0)
        errors = path.errors([0.0, 0.0], theta_v=-3.0)
        # 6.0 wraps to 6.0 - 2 pi.
        assert errors.theta_err == pytest.approx(6.0 - 2 * math.pi)

    def test_closest_point_on_line(self):
        path = StraightLinePath(theta_r=0.0)  # the +y axis
        closest, tangent = path.closest_point([3.0, 7.0])
        assert np.allclose(closest, [0.0, 7.0])
        assert tangent == 0.0

    def test_point_at(self):
        path = StraightLinePath(theta_r=math.pi / 2)
        assert np.allclose(path.point_at(5.0), [5.0, 0.0], atol=1e-12)

    def test_origin_validation(self):
        with pytest.raises(GeometryError):
            StraightLinePath(0.0, origin=[1.0, 2.0, 3.0])

    @given(theta_r=ANGLE, lateral=st.floats(min_value=-10, max_value=10))
    def test_distance_magnitude(self, theta_r, lateral):
        """|d_err| equals the orthogonal offset magnitude."""
        path = StraightLinePath(theta_r)
        tangent = heading_vector(theta_r)
        normal = np.array([-tangent[1], tangent[0]])
        position = 3.0 * tangent + lateral * normal
        errors = path.errors(position, theta_v=theta_r)
        assert abs(errors.d_err) == pytest.approx(abs(lateral), abs=1e-9)
        assert errors.theta_err == pytest.approx(0.0, abs=1e-12)


class TestPiecewiseLinear:
    @pytest.fixture
    def path(self):
        return PiecewiseLinearPath([(0, 0), (0, 10), (10, 10)])

    def test_validation(self):
        with pytest.raises(GeometryError):
            PiecewiseLinearPath([(0, 0)])
        with pytest.raises(GeometryError):
            PiecewiseLinearPath([(0, 0), (0, 0)])
        with pytest.raises(GeometryError):
            PiecewiseLinearPath([(0, 0, 0), (1, 1, 1)])

    def test_total_length(self, path):
        assert path.total_length == pytest.approx(20.0)

    def test_end_point(self, path):
        assert np.allclose(path.end_point, [10, 10])

    def test_point_at(self, path):
        assert np.allclose(path.point_at(5.0), [0, 5])
        assert np.allclose(path.point_at(15.0), [5, 10])
        assert np.allclose(path.point_at(-1.0), [0, 0])  # clamped
        assert np.allclose(path.point_at(99.0), [10, 10])  # clamped

    def test_closest_point_first_segment(self, path):
        closest, angle = path.closest_point([-2.0, 5.0])
        assert np.allclose(closest, [0, 5])
        assert angle == pytest.approx(0.0)  # northbound

    def test_closest_point_second_segment(self, path):
        closest, angle = path.closest_point([5.0, 12.0])
        assert np.allclose(closest, [5, 10])
        assert angle == pytest.approx(math.pi / 2)  # eastbound

    def test_closest_point_at_corner(self, path):
        closest, _ = path.closest_point([-1.0, 11.0])
        assert np.allclose(closest, [0, 10])

    def test_errors_signs_on_second_segment(self, path):
        # Traveling east; a vehicle north of the segment is on its LEFT.
        errors = path.errors([5.0, 12.0], theta_v=math.pi / 2)
        assert errors.d_err == pytest.approx(2.0)
        errors_south = path.errors([5.0, 8.0], theta_v=math.pi / 2)
        assert errors_south.d_err == pytest.approx(-2.0)

    def test_matches_straight_line_on_one_segment(self):
        theta = math.pi / 4
        end = 20.0 * heading_vector(theta)
        piecewise = PiecewiseLinearPath([(0.0, 0.0), tuple(end)])
        straight = StraightLinePath(theta)
        rng = np.random.default_rng(2)
        for _ in range(20):
            p = rng.uniform(2.0, 12.0, size=2)
            tv = rng.uniform(-1.0, 1.0)
            a = piecewise.errors(p, tv)
            b = straight.errors(p, tv)
            assert a.d_err == pytest.approx(b.d_err, abs=1e-9)
            assert a.theta_err == pytest.approx(b.theta_err, abs=1e-9)
