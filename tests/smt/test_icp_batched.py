"""Batched branch-and-prune vs the scalar solver: verdicts and witnesses.

``BatchedIcpSolver.solve`` mirrors the scalar search decision for
decision, so single-region queries must return the same verdict and the
same witness.  ``solve_union`` trades the per-region traversal for one
union frontier; verdicts stay identical and witnesses must still
validate and respect the serial lowest-region-first contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import cos, exp, sin, sqrt, tanh, var
from repro.intervals import Box, Interval
from repro.smt import (
    BatchedIcpSolver,
    IcpConfig,
    IcpSolver,
    Verdict,
    eq,
    ge,
    gt,
    le,
    solve_conjunction_batched,
)

X, Y = var("x"), var("y")
NAMES = ["x", "y"]
BOX22 = Box([Interval(-2.0, 2.0), Interval(-2.0, 2.0)])


CASES = [
    ([ge(X * X + Y * Y, 1.0), le(X * X + Y * Y, 1.1)], BOX22),
    ([ge(sin(X) + cos(Y), 1.9)], Box([Interval(-4, 4), Interval(-4, 4)])),
    ([ge(sin(X) + cos(Y), 2.5)], Box([Interval(-4, 4), Interval(-4, 4)])),
    ([le(tanh(X) * 2.0 - Y, 0.0), ge(X - Y * Y, 0.5)], Box([Interval(-3, 3), Interval(-3, 3)])),
    ([eq(X * X - 2.0, 0.0)], Box([Interval(0, 2), Interval(0, 1)])),
    ([ge(exp(X) - 3.0 * Y, 0.0), le(X + Y, -1.0), ge(Y, 0.25)], Box([Interval(-3, 3), Interval(-3, 3)])),
    ([ge(sqrt(X) - Y, 1.0)], Box([Interval(0, 4), Interval(-1, 1)])),
    ([gt(X / Y, 10.0), le(X, 0.5), ge(Y, 0.001)], Box([Interval(0, 1), Interval(0.001, 1)])),
    ([ge(X * Y, 100.0)], BOX22),
]


@pytest.mark.parametrize("case", range(len(CASES)))
def test_solve_matches_scalar(case):
    constraints, region = CASES[case]
    config = IcpConfig(delta=1e-3)
    scalar = IcpSolver(config).solve(constraints, region, NAMES)
    batched = BatchedIcpSolver(config).solve(constraints, region, NAMES)
    assert batched.verdict is scalar.verdict
    if scalar.verdict is Verdict.DELTA_SAT:
        np.testing.assert_allclose(
            batched.witness, scalar.witness, atol=config.delta
        )
        assert batched.witness_validated == scalar.witness_validated


def test_no_constraints_trivially_sat():
    result = BatchedIcpSolver().solve([], BOX22, NAMES)
    assert result.verdict is Verdict.DELTA_SAT
    np.testing.assert_allclose(result.witness, [0.0, 0.0])


def test_unbounded_region_rejected():
    from repro.errors import SolverError

    region = Box([Interval.entire(), Interval(0, 1)])
    with pytest.raises(SolverError):
        BatchedIcpSolver().solve([ge(X, 0.0)], region, NAMES)


def test_max_boxes_budget_unknown():
    config = IcpConfig(delta=1e-9, max_boxes=50)
    result = BatchedIcpSolver(config).solve(
        [eq(X * X + Y * Y - 1.9, 0.0)], BOX22, NAMES
    )
    assert result.verdict is Verdict.UNKNOWN


def test_contractor_disabled_still_correct():
    config = IcpConfig(delta=1e-3, use_contractor=False)
    scalar = IcpSolver(config).solve([ge(X * X + Y * Y, 1.0)], BOX22, NAMES)
    batched = BatchedIcpSolver(config).solve([ge(X * X + Y * Y, 1.0)], BOX22, NAMES)
    assert batched.verdict is scalar.verdict is Verdict.DELTA_SAT
    np.testing.assert_allclose(batched.witness, scalar.witness, atol=1e-3)


def test_solve_conjunction_batched_wrapper():
    result = solve_conjunction_batched([ge(X, 1.5)], BOX22, NAMES)
    assert result.verdict is Verdict.DELTA_SAT
    assert result.witness[0] >= 1.5 - 1e-3


class TestSolveUnion:
    def test_unsat_union(self):
        constraint = ge(X, 100.0)
        regions = [
            Box([Interval(-1.0, 0.0), Interval(0, 1)]),
            Box([Interval(0.0, 1.0), Interval(0, 1)]),
            Box([Interval(1.0, 2.0), Interval(0, 1)]),
        ]
        result = BatchedIcpSolver().solve_union([constraint], regions, NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_lowest_region_witness_wins(self):
        # both regions satisfy; the serial contract says region 0 reports
        constraint = le(X, 10.0)
        regions = [
            Box([Interval(5.0, 6.0), Interval(0, 1)]),
            Box([Interval(-6.0, -5.0), Interval(0, 1)]),
        ]
        result = BatchedIcpSolver().solve_union([constraint], regions, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert 5.0 <= result.witness[0] <= 6.0

    def test_later_region_wins_only_after_earlier_refuted(self):
        constraint = ge(X, 1.0)
        regions = [
            Box([Interval(-3.0, -2.0), Interval(0, 1)]),  # unsat
            Box([Interval(0.0, 2.0), Interval(0, 1)]),    # sat
        ]
        result = BatchedIcpSolver().solve_union([constraint], regions, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness[0] >= 1.0 - 1e-3

    def test_matches_serial_verdict_on_hard_conjunction(self):
        constraints = [ge(sin(X) * 4.0 - Y * Y, 0.5), le(X, 1.0)]
        regions = [
            Box([Interval(-4.0, -2.0), Interval(-2, 2)]),
            Box([Interval(-2.0, 0.0), Interval(-2, 2)]),
            Box([Interval(0.0, 2.0), Interval(-2, 2)]),
        ]
        config = IcpConfig(delta=1e-3)
        serial_verdicts = [
            IcpSolver(config).solve(constraints, r, NAMES).verdict
            for r in regions
        ]
        union = BatchedIcpSolver(config).solve_union(constraints, regions, NAMES)
        expected = (
            Verdict.DELTA_SAT
            if Verdict.DELTA_SAT in serial_verdicts
            else Verdict.UNSAT
        )
        assert union.verdict is expected
        if union.verdict is Verdict.DELTA_SAT:
            assert union.witness_validated

    def test_empty_regions_unsat(self):
        result = BatchedIcpSolver().solve_union([ge(X, 0.0)], [], NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_no_constraints_first_region_midpoint(self):
        regions = [
            Box([Interval(2.0, 4.0), Interval(0, 1)]),
            Box([Interval(-4.0, -2.0), Interval(0, 1)]),
        ]
        result = BatchedIcpSolver().solve_union([], regions, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        np.testing.assert_allclose(result.witness, [3.0, 0.5])

    def test_budget_exhaustion_matches_serial(self):
        # serial semantics under exhaustion: region 0 burns its budget
        # (UNKNOWN), but a later region's δ-SAT still reports — the
        # union search must agree, with its budget scaled to the
        # serial aggregate (max_boxes per region).
        config = IcpConfig(delta=1e-9, max_boxes=60)
        constraints = [eq(X * X + Y * Y - 1.9, 0.0)]
        regions = [BOX22, Box([Interval(0, 1), Interval(0, 1)])]
        serial = [
            IcpSolver(config).solve(constraints, r, NAMES) for r in regions
        ]
        union = BatchedIcpSolver(config).solve_union(
            constraints, regions, NAMES
        )
        expected = (
            Verdict.DELTA_SAT
            if any(r.verdict is Verdict.DELTA_SAT for r in serial)
            else Verdict.UNKNOWN
        )
        assert union.verdict is expected

    def test_budget_unknown_when_no_region_resolves(self):
        config = IcpConfig(delta=1e-12, max_boxes=40, use_contractor=False)
        regions = [BOX22, Box([Interval(-3, -1), Interval(-3, -1)])]
        result = BatchedIcpSolver(config).solve_union(
            [eq(X * X + Y * Y - 1.9, 0.0)], regions, NAMES
        )
        assert result.verdict is Verdict.UNKNOWN
