"""Generic plant/NN composition tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import (
    Plant,
    compose,
    dubins_error_plant,
    error_dynamics_system,
    inverted_pendulum_plant,
    linear_plant,
)
from repro.errors import ReproError
from repro.expr import var, variables_of
from repro.learning import proportional_controller_network
from repro.nn import FeedforwardNetwork, Layer, controller_network


class TestPlantValidation:
    def test_field_count_mismatch(self):
        with pytest.raises(ReproError):
            Plant(["x"], ["u"], [var("x"), var("u")])

    def test_name_collision(self):
        with pytest.raises(ReproError):
            Plant(["x"], ["x"], [var("x")])

    def test_default_output_is_state(self):
        plant = Plant(["a", "b"], ["u"], [var("b"), var("u")])
        assert plant.output_dimension == 2

    def test_needs_states_and_inputs(self):
        with pytest.raises(ReproError):
            Plant([], ["u"], [])


class TestCompose:
    def test_dimension_checks(self, rng):
        plant = dubins_error_plant()
        wrong_inputs = controller_network(4, inputs=3, rng=rng)
        with pytest.raises(ReproError):
            compose(plant, wrong_inputs)
        wrong_outputs = controller_network(4, outputs=2, rng=rng)
        with pytest.raises(ReproError):
            compose(plant, wrong_outputs)

    def test_closed_loop_has_no_input_vars(self, rng):
        plant = dubins_error_plant()
        net = controller_network(4, rng=rng)
        system = compose(plant, net)
        for expr in system.field_exprs:
            assert "u" not in variables_of(expr)

    def test_compose_equals_error_dynamics_builder(self):
        """The generic composition must agree with the hand-built
        error-dynamics system — numerically and symbolically."""
        net = proportional_controller_network(6)
        via_compose = compose(dubins_error_plant(), net)
        via_builder = error_dynamics_system(net)
        rng = np.random.default_rng(1)
        for _ in range(30):
            x = rng.uniform([-4, -1.3], [4, 1.3])
            assert np.allclose(via_compose.f(x), via_builder.f(x), atol=1e-10)
            assert np.allclose(
                via_compose.symbolic_f(x), via_builder.symbolic_f(x), atol=1e-10
            )

    def test_numeric_override_matches_symbolic(self, rng):
        plant = inverted_pendulum_plant()
        net = controller_network(5, rng=rng)
        system = compose(plant, net)
        for _ in range(20):
            x = rng.uniform([-1, -2], [1, 2])
            assert np.allclose(system.f(x), system.symbolic_f(x), atol=1e-9)

    def test_linear_plant_composition(self, rng):
        a = np.array([[0.0, 1.0], [-1.0, -0.5]])
        b = np.array([[0.0], [1.0]])
        plant = linear_plant(a, b)
        # Identity-ish linear "network": u = -k x via a linear layer pair.
        k = np.array([[1.5, 0.9]])
        net = FeedforwardNetwork(
            [
                Layer(np.eye(2), np.zeros(2), "linear"),
                Layer(-k, np.zeros(1), "linear"),
            ]
        )
        system = compose(plant, net)
        closed_a = a - b @ k
        for _ in range(10):
            x = rng.uniform(-2, 2, size=2)
            assert np.allclose(system.f(x), closed_a @ x, atol=1e-10)

    def test_simulation_through_composition(self, rng):
        """The composed pendulum system must be integrable and stable."""
        plant = inverted_pendulum_plant()
        kp, kd, squash = 12.0, 4.0, 0.5
        net = FeedforwardNetwork(
            [
                Layer(np.array([[squash, 0.0], [0.0, squash]]), np.zeros(2), "tansig"),
                Layer(np.array([[-kp / squash, -kd / squash]]), np.zeros(1), "linear"),
            ]
        )
        system = compose(plant, net)
        trace = system.simulator().simulate(np.array([0.3, 0.0]), 8.0, 0.01)
        assert np.linalg.norm(trace.final_state) < 1e-2
