"""Initial-state samplers over boxes.

The synthesis loop seeds its simulations from the initial set ``X0`` and
from the search domain; these samplers provide the random, grid, and
space-filling strategies used by the experiments.  All randomized
samplers take an explicit :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..intervals import Box

__all__ = [
    "sample_uniform",
    "sample_grid",
    "sample_latin_hypercube",
    "sample_boundary",
]


def _finite_bounds(box: Box) -> tuple[np.ndarray, np.ndarray]:
    if not box.is_finite():
        raise ReproError("sampling requires a bounded box")
    return box.lower(), box.upper()


def sample_uniform(box: Box, count: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` i.i.d. uniform points in the box, shape ``(count, n)``."""
    if count < 1:
        raise ReproError("count must be >= 1")
    lo, hi = _finite_bounds(box)
    return rng.uniform(lo, hi, size=(count, box.dimension))


def sample_grid(box: Box, per_dimension: int) -> np.ndarray:
    """Uniform grid, ``per_dimension`` points per axis."""
    return box.sample_grid(per_dimension)


def sample_latin_hypercube(
    box: Box, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Latin hypercube sample: one point per row/column stratum per axis.

    Gives better space coverage than i.i.d. sampling at the same count,
    which reduces the number of CEX-refinement iterations in practice.
    """
    if count < 1:
        raise ReproError("count must be >= 1")
    lo, hi = _finite_bounds(box)
    n = box.dimension
    # Stratified positions per dimension, independently shuffled.
    u = (rng.random((count, n)) + np.arange(count)[:, None]) / count
    for j in range(n):
        rng.shuffle(u[:, j])
    return lo + u * (hi - lo)


def sample_boundary(box: Box, per_face: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform samples on each face of the box boundary.

    For an ``n``-dimensional box there are ``2n`` faces; the result has
    ``2 * n * per_face`` rows.  Useful for probing the barrier condition
    near the initial-set boundary.
    """
    if per_face < 1:
        raise ReproError("per_face must be >= 1")
    lo, hi = _finite_bounds(box)
    n = box.dimension
    points = []
    for axis in range(n):
        for bound in (lo[axis], hi[axis]):
            face = rng.uniform(lo, hi, size=(per_face, n))
            face[:, axis] = bound
            points.append(face)
    return np.vstack(points)
