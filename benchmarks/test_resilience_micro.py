"""Resilience benchmark: seam overhead and supervisor recovery latency.

Two numbers keep the resilience layer honest:

* **fault-free seam overhead** — the dubins end-to-end verify with the
  seams wired in but no plan installed (the production state) must cost
  at most ``MAX_SEAM_OVERHEAD``× a run with the seam registry bypassed.
  The seams' fast path is one attribute read + ``None`` check; if that
  ever stops being true, this bar catches it.
* **supervisor recovery latency** — wall-clock cost of one injected
  shard-worker kill: detection (round deadline), team respawn, and the
  replayed round, measured as faulted-run minus baseline-run seconds.

Writes ``benchmarks/results/BENCH_resilience.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro import api
from repro.api.family import get_family
from repro.api.runner import derive_scenario_seed
from repro.resilience import faults
from repro.resilience.faults import FaultAction, FaultPlan
from repro.resilience.supervisor import clear_incidents, incidents

SEED = 0
#: fault-free runs with seams wired may cost at most this factor
MAX_SEAM_OVERHEAD = 1.05
#: timing is noisy; the overhead medians over this many runs
OVERHEAD_RUNS = 3


def _dubins_setup():
    scenario = get_family("dubins").instantiate()
    config = dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(SEED, scenario.name)
    )
    return scenario, config


def _timed_run(scenario, config, engine="batched-icp"):
    t0 = time.perf_counter()
    artifact = api.run(scenario, config=config, engine=engine, cache=False)
    return time.perf_counter() - t0, artifact


def test_fault_free_seam_overhead(emit, results_dir):
    scenario, config = _dubins_setup()
    _timed_run(scenario, config)  # warm caches / JIT-ish first-run noise

    with_seams = []
    without_seams = []
    for _ in range(OVERHEAD_RUNS):
        faults.clear_plan()
        seconds, _artifact = _timed_run(scenario, config)
        with_seams.append(seconds)

        # Bypass the registry entirely: fire() short-circuits before
        # reading any state, approximating un-instrumented hot paths.
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(faults, "fire", lambda seam, detail="": None)
            seconds, _artifact = _timed_run(scenario, config)
            without_seams.append(seconds)

    with_s = sorted(with_seams)[OVERHEAD_RUNS // 2]
    without_s = sorted(without_seams)[OVERHEAD_RUNS // 2]
    overhead = with_s / without_s

    payload = {
        "benchmark": "fault-free seam overhead (dubins end-to-end)",
        "runs": OVERHEAD_RUNS,
        "median_with_seams_s": round(with_s, 4),
        "median_without_seams_s": round(without_s, 4),
        "overhead_factor": round(overhead, 4),
        "max_overhead_bar": MAX_SEAM_OVERHEAD,
    }
    path = results_dir / "BENCH_resilience.json"
    existing = json.loads(path.read_text()) if path.is_file() else {}
    existing["seam_overhead"] = payload
    path.write_text(json.dumps(existing, indent=2) + "\n")

    emit(
        "resilience_seam_overhead",
        (
            f"dubins verify, median of {OVERHEAD_RUNS}:\n"
            f"  seams wired (production)  {with_s:8.3f}s\n"
            f"  seams bypassed            {without_s:8.3f}s\n"
            f"  overhead                  {overhead:8.3f}x   "
            f"(bar {MAX_SEAM_OVERHEAD}x)"
        ),
    )
    assert overhead <= MAX_SEAM_OVERHEAD, (
        f"fault-free seam overhead {overhead:.3f}x exceeds the "
        f"{MAX_SEAM_OVERHEAD}x bar"
    )


@pytest.mark.skipif(not hasattr(os, "fork"), reason="sharded engine needs fork")
def test_supervisor_recovery_latency(emit, results_dir, monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "2")
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "10")
    scenario = get_family("linear").instantiate()
    config = dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(SEED, scenario.name)
    )

    base_s, baseline = _timed_run(scenario, config, engine="sharded-icp")

    clear_incidents()
    plan = FaultPlan((FaultAction("shard.worker", "kill", at=0),), label="bench")
    with faults.injected(plan):
        t0 = time.perf_counter()
        faulted = api.run(scenario, config=config, engine="sharded-icp", cache=False)
        faulted_s = time.perf_counter() - t0
        fired = faults.fired_faults()

    assert fired, "the injected kill never fired"
    assert faulted.verified == baseline.verified
    assert faulted.level == baseline.level
    recovery_s = max(0.0, faulted_s - base_s)
    kinds = sorted({e["kind"] for e in incidents()})

    payload = {
        "benchmark": "shard supervisor recovery latency (linear, 2 shards)",
        "baseline_s": round(base_s, 4),
        "faulted_s": round(faulted_s, 4),
        "recovery_latency_s": round(recovery_s, 4),
        "incidents": kinds,
    }
    path = results_dir / "BENCH_resilience.json"
    existing = json.loads(path.read_text()) if path.is_file() else {}
    existing["recovery_latency"] = payload
    path.write_text(json.dumps(existing, indent=2) + "\n")

    emit(
        "resilience_recovery_latency",
        (
            f"linear verify on sharded-icp (2 shards), one worker killed:\n"
            f"  fault-free   {base_s:8.3f}s\n"
            f"  one kill     {faulted_s:8.3f}s\n"
            f"  recovery     {recovery_s:8.3f}s   incidents: {', '.join(kinds)}"
        ),
    )
