"""Run scenarios — singly or as a process-parallel batch.

:func:`run` executes one scenario through the
:class:`~repro.api.pipeline.VerificationPipeline` and returns a
:class:`RunArtifact`: a JSON-round-trippable record of the outcome
(status, certificate data, per-stage timings, config).  :func:`run_batch`
fans a list of scenarios out over worker processes with
:mod:`concurrent.futures`, preserving input order and converting
per-scenario failures into error artifacts instead of aborting the
batch.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..barrier import SynthesisConfig, SynthesisReport
from ..expr import to_infix
from .pipeline import ProgressCallback, VerificationPipeline
from .scenario import (
    Scenario,
    get_scenario,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
)

__all__ = ["RunArtifact", "run", "run_batch"]

#: artifact schema version (bump on incompatible field changes)
ARTIFACT_VERSION = 1


@dataclass
class RunArtifact:
    """JSON-serializable record of one verification run.

    ``report`` keeps the in-process :class:`SynthesisReport` (with the
    live certificate object) when available; it is dropped by
    serialization and by cross-process transport — everything else
    round-trips through :meth:`to_json` / :meth:`from_json` losslessly.
    """

    scenario: str
    status: str
    verified: bool
    level: float | None = None
    candidate_iterations: int = 0
    levelset_iterations: int = 0
    traces_used: int = 0
    counterexamples: int = 0
    lp_seconds: float = 0.0
    query_seconds: float = 0.0
    generator_seconds: float = 0.0
    other_seconds: float = 0.0
    total_seconds: float = 0.0
    #: cumulative wall seconds per pipeline stage
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: flattened SynthesisConfig the run used
    config: dict = field(default_factory=dict)
    #: proven barrier data: level, gamma, coefficients, W(x) as infix
    certificate: dict | None = None
    #: traceback-free error message for failed batch entries
    error: str | None = None
    version: int = ARTIFACT_VERSION
    #: in-process only; never serialized
    report: SynthesisReport | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def synthesis_config(self) -> SynthesisConfig:
        """The run's config, reconstructed from the flattened dict."""
        return synthesis_config_from_dict(self.config)

    def to_dict(self) -> dict:
        """Plain-data view (everything except the live report)."""
        data = {}
        for spec in dataclasses.fields(self):
            if spec.name == "report":
                continue
            value = getattr(self, spec.name)
            data[spec.name] = dict(value) if isinstance(value, dict) else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        """Rebuild an artifact from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__ if f != "report"}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _artifact_from_run(
    scenario: Scenario, config: SynthesisConfig, pipeline_run
) -> RunArtifact:
    report = pipeline_run.report
    certificate = None
    if report.certificate is not None:
        cert = report.certificate
        certificate = {
            "level": cert.level,
            "gamma": cert.gamma,
            "coefficients": (
                None
                if cert.coefficients is None
                else [float(c) for c in cert.coefficients]
            ),
            "w_infix": to_infix(cert.w_expr),
        }
    return RunArtifact(
        scenario=scenario.name,
        status=report.status.value,
        verified=report.verified,
        level=report.level,
        candidate_iterations=report.candidate_iterations,
        levelset_iterations=report.levelset_iterations,
        traces_used=report.traces_used,
        counterexamples=len(report.counterexamples),
        lp_seconds=report.lp_seconds,
        query_seconds=report.query_seconds,
        generator_seconds=report.generator_seconds,
        other_seconds=report.other_seconds,
        total_seconds=report.total_seconds,
        stage_seconds=dict(report.stage_seconds),
        config=synthesis_config_to_dict(config),
        certificate=certificate,
        report=report,
    )


def run(
    scenario: "str | Scenario",
    config: SynthesisConfig | None = None,
    progress: ProgressCallback | None = None,
) -> RunArtifact:
    """Verify one scenario (by registry name or object).

    ``config`` overrides the scenario's bundled config for this run.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    effective = config or scenario.config
    pipeline = VerificationPipeline(config=effective, progress=progress)
    outcome = pipeline.run(scenario.problem())
    return _artifact_from_run(scenario, effective, outcome)


def _execute(
    scenario: Scenario,
    config: SynthesisConfig | None,
    strip_report: bool,
) -> RunArtifact:
    """Batch worker: never raises — failures become error artifacts."""
    name = scenario.name
    try:
        artifact = run(scenario, config=config)
    except Exception as exc:  # noqa: BLE001 — one bad scenario must not kill the batch
        artifact = RunArtifact(
            scenario=name,
            status="error",
            verified=False,
            error=f"{type(exc).__name__}: {exc}",
            config={} if config is None else synthesis_config_to_dict(config),
        )
    if strip_report:
        # SynthesisReport holds compiled tapes and solver state that have
        # no business crossing a process boundary; the artifact's plain
        # fields carry everything a batch consumer needs.
        artifact.report = None
    return artifact


def _as_scenarios(scenarios: Sequence["str | Scenario"]) -> list[Scenario]:
    """Resolve names eagerly (fail fast on unknown names, before any
    fan-out).  Workers always receive Scenario objects: user-registered
    names exist only in the parent's registry, which spawn-started
    workers do not inherit."""
    resolved: list[Scenario] = []
    for item in scenarios:
        if isinstance(item, str):
            resolved.append(get_scenario(item))
        elif isinstance(item, Scenario):
            resolved.append(item)
        else:
            raise TypeError(
                f"expected scenario name or Scenario, got {type(item).__name__}"
            )
    return resolved


def run_batch(
    scenarios: Sequence["str | Scenario"],
    workers: int | None = None,
    config: SynthesisConfig | None = None,
) -> list[RunArtifact]:
    """Verify many scenarios, process-parallel, preserving input order.

    ``workers=None`` picks ``min(len(scenarios), cpu_count)``;
    ``workers=1`` runs serially in-process (artifacts then keep their
    live ``report``).  Scenarios that cannot be pickled into a worker
    (e.g. lambda factories) fall back to in-process execution.
    """
    resolved = _as_scenarios(scenarios)
    if not resolved:
        return []
    if workers is None:
        workers = min(len(resolved), os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(resolved) == 1:
        return [
            _execute(scenario, config, strip_report=False)
            for scenario in resolved
        ]

    picklable: list[bool] = []
    for scenario in resolved:
        try:
            pickle.dumps(scenario)
            picklable.append(True)
        except Exception:  # noqa: BLE001 — unpicklable scenarios run inline
            picklable.append(False)

    results: list[RunArtifact | None] = [None] * len(resolved)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            i: pool.submit(_execute, scenario, config, True)
            for i, (scenario, ok) in enumerate(zip(resolved, picklable))
            if ok
        }
        for i, ok in enumerate(picklable):
            if not ok:
                results[i] = _execute(resolved[i], config, strip_report=False)
        for i, future in futures.items():
            results[i] = future.result()
    return [artifact for artifact in results if artifact is not None]
