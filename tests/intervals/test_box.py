"""Tests for interval boxes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IntervalError
from repro.intervals import Box, Interval


@st.composite
def boxes(draw, max_dim=4, bound=100.0):
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    parts = []
    for _ in range(dim):
        a = draw(st.floats(min_value=-bound, max_value=bound, allow_nan=False))
        b = draw(st.floats(min_value=-bound, max_value=bound, allow_nan=False))
        parts.append(Interval(min(a, b), max(a, b)))
    return Box(parts)


class TestConstruction:
    def test_from_bounds(self):
        box = Box.from_bounds([0, -1], [1, 1])
        assert box.dimension == 2
        assert box[0] == Interval(0, 1)

    def test_mismatched_bounds_raise(self):
        with pytest.raises(IntervalError):
            Box.from_bounds([0, 1], [1])

    def test_empty_raises(self):
        with pytest.raises(IntervalError):
            Box([])

    def test_from_point(self):
        box = Box.from_point([1.0, 2.0])
        assert box[0].is_point()
        assert box.contains([1.0, 2.0])

    def test_from_array_shape_check(self):
        with pytest.raises(IntervalError):
            Box.from_array(np.zeros((3, 3)))

    def test_roundtrip_array(self):
        box = Box.from_bounds([0, -2], [1, 2])
        assert Box.from_array(box.to_array()) == box

    def test_non_interval_component_rejected(self):
        with pytest.raises(IntervalError):
            Box([Interval(0, 1), (0, 1)])  # type: ignore[list-item]

    def test_immutability(self):
        box = Box.from_bounds([0], [1])
        with pytest.raises(AttributeError):
            box._intervals = ()


class TestInspection:
    def test_lower_upper_midpoint(self):
        box = Box.from_bounds([0, -4], [2, 4])
        assert np.allclose(box.lower(), [0, -4])
        assert np.allclose(box.upper(), [2, 4])
        assert np.allclose(box.midpoint(), [1, 0])

    def test_widths_and_widest(self):
        box = Box.from_bounds([0, 0], [1, 5])
        assert np.allclose(box.widths(), [1, 5])
        assert box.widest_dimension() == 1
        assert box.max_width() == pytest.approx(5.0)

    def test_volume(self):
        assert Box.from_bounds([0, 0], [2, 3]).volume() == pytest.approx(6.0)

    def test_contains(self):
        box = Box.from_bounds([0, 0], [1, 1])
        assert box.contains([0.5, 0.5])
        assert not box.contains([1.5, 0.5])

    def test_contains_dimension_mismatch(self):
        with pytest.raises(IntervalError):
            Box.from_bounds([0], [1]).contains([0.5, 0.5])

    def test_contains_box(self):
        outer = Box.from_bounds([0, 0], [10, 10])
        inner = Box.from_bounds([1, 1], [2, 2])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_is_finite(self):
        assert Box.from_bounds([0], [1]).is_finite()
        assert not Box([Interval(0, np.inf)]).is_finite()


class TestOperations:
    def test_replace(self):
        box = Box.from_bounds([0, 0], [1, 1])
        replaced = box.replace(1, Interval(5, 6))
        assert replaced[1] == Interval(5, 6)
        assert box[1] == Interval(0, 1)  # original untouched

    def test_intersection(self):
        a = Box.from_bounds([0, 0], [2, 2])
        b = Box.from_bounds([1, 1], [3, 3])
        assert a.intersection(b) == Box.from_bounds([1, 1], [2, 2])

    def test_try_intersection_disjoint(self):
        a = Box.from_bounds([0, 0], [1, 1])
        b = Box.from_bounds([2, 0], [3, 1])
        assert a.try_intersection(b) is None

    def test_hull(self):
        a = Box.from_bounds([0, 0], [1, 1])
        b = Box.from_bounds([2, -1], [3, 0.5])
        assert a.hull(b) == Box.from_bounds([0, -1], [3, 1])

    def test_bisect_default_widest(self):
        box = Box.from_bounds([0, 0], [1, 10])
        left, right = box.bisect()
        assert left[1].hi == right[1].lo == pytest.approx(5.0)
        assert left[0] == box[0]

    def test_bisect_explicit_dimension(self):
        box = Box.from_bounds([0, 0], [1, 10])
        left, right = box.bisect(0)
        assert left[0].hi == pytest.approx(0.5)

    def test_sample_grid(self):
        box = Box.from_bounds([0, 0], [1, 1])
        grid = box.sample_grid(3)
        assert grid.shape == (9, 2)
        assert all(box.contains(p) for p in grid)

    def test_sample_grid_one(self):
        grid = Box.from_bounds([0, 0], [2, 2]).sample_grid(1)
        assert grid.shape == (1, 2)
        assert np.allclose(grid[0], [1, 1])

    def test_clip_point(self):
        box = Box.from_bounds([0, 0], [1, 1])
        assert np.allclose(box.clip_point([5, -3]), [1, 0])

    def test_dimension_mismatch_ops(self):
        a = Box.from_bounds([0], [1])
        b = Box.from_bounds([0, 0], [1, 1])
        with pytest.raises(IntervalError):
            a.intersection(b)


class TestProperties:
    @given(boxes())
    def test_midpoint_inside(self, box):
        assert box.contains(box.midpoint())

    @given(boxes())
    def test_bisect_covers(self, box):
        left, right = box.bisect()
        mid = box.midpoint()
        assert left.contains(box.lower())
        assert right.contains(box.upper())
        assert left.contains(mid) or right.contains(mid)

    @given(boxes(), boxes())
    def test_hull_contains_both(self, a, b):
        if a.dimension != b.dimension:
            return
        hull = a.hull(b)
        assert hull.contains_box(a)
        assert hull.contains_box(b)

    @given(boxes())
    def test_inflate_contains(self, box):
        assert box.inflate(absolute=0.1).contains_box(box)
