"""Batched branch-and-prune: the whole frontier in one :class:`BoxArray`.

:class:`IcpSolver` keeps its frontier as a Python list of per-box
arrays and drops to scalar :class:`~repro.intervals.Interval` HC4 for
contraction — one interpreter walk per box per constraint.
:class:`BatchedIcpSolver` is the structure-of-arrays rewrite: the
frontier lives in one contiguous :class:`~repro.intervals.BoxArray`,
pruning/splitting happen through boolean masks, and the HC4 contraction
pass (:mod:`repro.smt.hc4`) sweeps *every surviving box at once* with
per-expression-node interval ndarrays.

The search semantics deliberately mirror the scalar solver decision for
decision — same depth-first batch order, same pre-/post-contraction
width checks, same first-hit witness selection — so the two return
identical verdicts (and witnesses equal up to the documented ulp-level
widening differences of :mod:`repro.intervals.array`) while the batched
solver does the contraction work at NumPy speed.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..errors import SolverError
from ..intervals import Box, BoxArray
from .constraint import Constraint, Status
from .hc4 import FrontierContractor, contract_frontier
from .icp import IcpConfig
from .result import SmtResult, SolverStats, Verdict

__all__ = ["BatchedIcpSolver", "prune_masks", "solve_conjunction_batched"]

#: below this many freshly split children, :meth:`BatchedIcpSolver.solve_union`
#: quadrisects instead of bisecting so the next vectorized pass stays wide
_MULTISECTION_THRESHOLD = 64


def prune_masks(
    tapes: Sequence,
    constraints: Sequence[Constraint],
    lo: np.ndarray,
    hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-pass pruning of one batch: ``(alive, all_true)`` row masks.

    Runs every constraint tape over the rows still alive (progressively
    masked, so a row refuted by an early constraint skips the later
    tapes — exactly the historical in-loop behavior of ``solve`` /
    ``solve_union``).  Row results depend only on that row's bounds, so
    evaluating a row subset yields bit-identical masks — the property
    the sharded solver's row-range fan-out relies on (pinned by
    ``tests/smt/test_icp_sharded.py``).
    """
    m = lo.shape[0]
    alive = np.ones(m, dtype=bool)
    all_true = np.ones(m, dtype=bool)
    for tape, constraint in zip(tapes, constraints):
        b_lo, b_hi = tape.eval_boxes(lo[alive], hi[alive])
        status = constraint.status_from_bounds(b_lo, b_hi)
        idx = np.flatnonzero(alive)
        all_true[idx[status != int(Status.CERTAIN_TRUE)]] = False
        alive[idx[status == int(Status.CERTAIN_FALSE)]] = False
        if not alive.any():
            break
    return alive, all_true


def _interleave_halves(left: BoxArray, right: BoxArray) -> BoxArray:
    """Stack split halves as ``(L_0, R_0, L_1, R_1, ...)`` — the same
    LIFO layout the scalar solver builds box by box."""
    k = len(left)
    lo = np.empty((2 * k, left.dimension))
    hi = np.empty((2 * k, left.dimension))
    lo[0::2] = left.lo
    lo[1::2] = right.lo
    hi[0::2] = left.hi
    hi[1::2] = right.hi
    return BoxArray(lo, hi)


class BatchedIcpSolver:
    """Drop-in :class:`~repro.smt.IcpSolver` twin over a ``BoxArray`` frontier.

    ``should_stop`` (optional) is polled once per frontier batch; when it
    returns True the solve returns UNKNOWN early.  The ``portfolio``
    engine uses it to cancel the in-house search the moment an external
    solver reaches a verdict first — with the default ``None`` the search
    semantics are exactly the historical ones.
    """

    def __init__(
        self,
        config: IcpConfig | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ):
        self.config = config or IcpConfig()
        self.should_stop = should_stop

    # The two hooks below carry every round's heavy row-wise work.  They
    # are methods (not inlined) so the frontier-sharded subclass
    # (:class:`~repro.smt.icp_sharded.ShardedIcpSolver`) can fan the
    # same computation out across worker processes while the search loop
    # — frontier order, witness scan, stats — stays this exact code.
    def _prune_masks(
        self,
        tapes: Sequence,
        constraints: Sequence[Constraint],
        batch: BoxArray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forward-pass ``(alive, all_true)`` masks for one batch."""
        return prune_masks(tapes, constraints, batch.lo, batch.hi)

    def _contract_rows(
        self,
        contractors: Sequence[FrontierContractor],
        boxes: BoxArray,
        max_rounds: int,
    ) -> tuple[BoxArray, np.ndarray]:
        """HC4 contraction of the surviving rows."""
        return contract_frontier(contractors, boxes, max_rounds=max_rounds)

    def solve(
        self,
        constraints: Sequence[Constraint],
        region: Box,
        variable_names: Sequence[str],
    ) -> SmtResult:
        """Decide ``∃x ∈ region: ∧ constraints`` to precision δ."""
        config = self.config
        names = list(variable_names)
        if region.dimension != len(names):
            raise SolverError(
                f"region dimension {region.dimension} != {len(names)} variables"
            )
        if not constraints:
            mid = region.midpoint()
            return SmtResult(
                Verdict.DELTA_SAT,
                config.delta,
                witness=mid,
                witness_box=region,
                witness_validated=True,
            )
        if not region.is_finite():
            raise SolverError("ICP requires a bounded search region")

        tapes = [c.compiled(names) for c in constraints]
        contract_ok = config.use_contractor and all(
            len(t) <= config.contractor_node_limit for t in tapes
        )
        contractors = (
            [FrontierContractor(c, names) for c in constraints]
            if contract_ok
            else []
        )

        stats = SolverStats()
        start = time.perf_counter()
        deadline = None if config.time_limit is None else start + config.time_limit

        frontier = BoxArray.from_box(region)
        depths = np.zeros(1, dtype=np.int64)

        while len(frontier):
            if deadline is not None and time.perf_counter() > deadline:
                stats.elapsed_seconds = time.perf_counter() - start
                return SmtResult(Verdict.UNKNOWN, config.delta, stats=stats)
            if self.should_stop is not None and self.should_stop():
                stats.elapsed_seconds = time.perf_counter() - start
                return SmtResult(Verdict.UNKNOWN, config.delta, stats=stats)
            if stats.boxes_processed >= config.max_boxes:
                stats.elapsed_seconds = time.perf_counter() - start
                return SmtResult(Verdict.UNKNOWN, config.delta, stats=stats)

            take = min(config.batch_size, len(frontier))
            batch = frontier.select(slice(len(frontier) - take, None))
            batch_depths = depths[-take:]
            frontier = frontier.select(slice(0, len(frontier) - take))
            depths = depths[:-take]

            m = len(batch)
            stats.boxes_processed += m
            stats.max_depth = max(stats.max_depth, int(batch_depths.max()))

            alive, all_true = self._prune_masks(tapes, constraints, batch)

            stats.boxes_pruned += int(m - alive.sum())

            # A box where every constraint certainly holds: any point works.
            certain = alive & all_true
            if certain.any():
                i = int(np.flatnonzero(certain)[0])
                stats.boxes_certain += 1
                stats.elapsed_seconds = time.perf_counter() - start
                box = batch.box_at(i)
                return SmtResult(
                    Verdict.DELTA_SAT,
                    config.delta,
                    witness=box.midpoint(),
                    witness_box=box,
                    witness_validated=True,
                    stats=stats,
                )

            alive_idx = np.flatnonzero(alive)
            if alive_idx.size == 0:
                continue

            survivors = batch.select(alive_idx)
            survivor_depths = batch_depths[alive_idx]

            # Pre-contraction width check (raw hi - lo, like the scalar
            # solver's in-batch test).
            pre_small = survivors.raw_widths().max(axis=1) <= config.delta

            if contract_ok:
                # Contract only the rows the scalar scan would reach:
                # everything before the first pre-small row (the scan
                # returns there, so later rows are never contracted).
                if pre_small.any():
                    first_pre = int(np.argmax(pre_small))
                else:
                    first_pre = len(survivors)
                need = np.zeros(len(survivors), dtype=bool)
                need[:first_pre] = True
                contracted, c_alive = self._contract_rows(
                    contractors,
                    survivors.select(need),
                    config.contractor_rounds,
                )
                stats.contractions += int(need.sum())
            else:
                contracted, c_alive = None, None

            # Walk rows in index order so the first witness event matches
            # the scalar solver's sequential scan.
            post_small = None
            if contracted is not None and len(contracted):
                post_small = contracted.max_widths() <= config.delta
            contract_row = 0
            split_rows: list[int] = []  # indices into `contracted`
            plain_split_rows: list[int] = []  # rows when contraction is off
            for row in range(len(survivors)):
                if pre_small[row]:
                    stats.elapsed_seconds = time.perf_counter() - start
                    return self._witness_result(
                        survivors.box_at(row), constraints, names, stats
                    )
                if not contract_ok:
                    plain_split_rows.append(row)
                    continue
                crow = contract_row
                contract_row += 1
                if not c_alive[crow]:
                    stats.boxes_pruned += 1
                    continue
                if post_small[crow]:
                    stats.elapsed_seconds = time.perf_counter() - start
                    return self._witness_result(
                        contracted.box_at(crow), constraints, names, stats
                    )
                split_rows.append(crow)

            # Bisect the remaining rows along their widest dimensions and
            # push (left, right) pairs in ascending row order — the same
            # LIFO layout the scalar solver builds box by box.
            if contract_ok:
                # split_rows index into `contracted`, whose rows are the
                # contracted survivors in order; map back for depths.
                need_idx = np.flatnonzero(need)
                if split_rows:
                    sel = np.array(split_rows, dtype=int)
                    to_split = contracted.select(sel)
                    split_depths = survivor_depths[need_idx[sel]]
                else:
                    to_split = None
                    split_depths = np.empty(0, dtype=np.int64)
            else:
                to_split = (
                    survivors.select(np.array(plain_split_rows, dtype=int))
                    if plain_split_rows
                    else None
                )
                split_depths = (
                    survivor_depths[np.array(plain_split_rows, dtype=int)]
                    if plain_split_rows
                    else np.empty(0, dtype=np.int64)
                )

            if to_split is not None and len(to_split):
                children = _interleave_halves(*to_split.bisect_widest())
                frontier = (
                    BoxArray.concatenate([frontier, children])
                    if len(frontier)
                    else children
                )
                depths = np.concatenate(
                    [depths, np.repeat(split_depths + 1, 2)]
                )
                stats.boxes_split += len(to_split)

        stats.elapsed_seconds = time.perf_counter() - start
        return SmtResult(Verdict.UNSAT, self.config.delta, stats=stats)

    def solve_union(
        self,
        constraints: Sequence[Constraint],
        regions: Sequence[Box],
        variable_names: Sequence[str],
    ) -> SmtResult:
        """Decide ``∃x ∈ ∪ regions: ∧ constraints`` in **one** frontier.

        The serial path solves one region at a time, so its frontier is
        only as wide as one subproblem's search tree — too narrow to
        amortize a vectorized pass.  Here all regions seed a single
        tagged :class:`~repro.intervals.BoxArray` and branch-and-prune
        runs over their union, which multiplies the batch width by the
        region count and divides the number of tape/contraction passes
        by the same factor.

        The serial witness semantics are preserved: a δ-SAT event for
        region ``k`` is only reported once every region ``< k`` has been
        fully refuted, and frontier rows of regions ``>= k`` are pruned
        the moment ``k``'s witness is recorded (they can no longer win).
        Rows of one region keep their relative order, so ``k``'s first
        event matches what its solo search would have found whenever the
        frontier fits in one batch.  The serial path grants *each*
        region its own ``max_boxes``/``time_limit``; the union search
        mirrors that with a per-region box counter — a region exceeding
        ``max_boxes`` drops out as UNKNOWN while the others keep
        searching — and a wall-clock deadline scaled by the region
        count, so the UNSAT-vs-UNKNOWN boundary matches the serial
        dispatch.
        """
        config = self.config
        names = list(variable_names)
        if not regions:
            return SmtResult(Verdict.UNSAT, config.delta)
        for region in regions:
            if region.dimension != len(names):
                raise SolverError(
                    f"region dimension {region.dimension} != {len(names)} variables"
                )
            if not region.is_finite():
                raise SolverError("ICP requires bounded search regions")
        if not constraints:
            first = regions[0]
            return SmtResult(
                Verdict.DELTA_SAT,
                config.delta,
                witness=first.midpoint(),
                witness_box=first,
                witness_validated=True,
            )

        tapes = [c.compiled(names) for c in constraints]
        contract_ok = config.use_contractor and all(
            len(t) <= config.contractor_node_limit for t in tapes
        )
        contractors = (
            [FrontierContractor(c, names) for c in constraints]
            if contract_ok
            else []
        )

        stats = SolverStats()
        start = time.perf_counter()
        n_regions = len(regions)
        deadline = (
            None
            if config.time_limit is None
            else start + config.time_limit * n_regions
        )
        #: boxes processed per region: each gets the serial per-solve budget
        tag_boxes = np.zeros(n_regions, dtype=np.int64)
        exhausted = np.zeros(n_regions, dtype=bool)

        frontier = BoxArray.from_boxes(list(regions))
        depths = np.zeros(n_regions, dtype=np.int64)
        tags = np.arange(n_regions, dtype=np.int64)
        best_tag: int | None = None
        best_box: Box | None = None

        def finish(verdict: Verdict, box: Box | None = None) -> SmtResult:
            stats.elapsed_seconds = time.perf_counter() - start
            if box is None:
                return SmtResult(verdict, config.delta, stats=stats)
            return self._witness_result(box, constraints, names, stats)

        def wrap_up() -> SmtResult:
            # Serial semantics: a δ-SAT witness stands even when an
            # earlier region ran out of budget (that region alone would
            # have been UNKNOWN); with no witness, any exhausted region
            # makes the union UNKNOWN.
            if best_tag is not None:
                return finish(Verdict.DELTA_SAT, best_box)
            if exhausted.any():
                return finish(Verdict.UNKNOWN)
            return finish(Verdict.UNSAT)

        while len(frontier):
            if deadline is not None and time.perf_counter() > deadline:
                if best_tag is not None:
                    return finish(Verdict.DELTA_SAT, best_box)
                return finish(Verdict.UNKNOWN)
            if self.should_stop is not None and self.should_stop():
                if best_tag is not None:
                    return finish(Verdict.DELTA_SAT, best_box)
                return finish(Verdict.UNKNOWN)

            take = min(config.batch_size, len(frontier))
            cut = len(frontier) - take
            batch = frontier.select(slice(cut, None))
            batch_tags = tags[cut:]
            batch_depths = depths[cut:]
            frontier = frontier.select(slice(0, cut))
            tags = tags[:cut]
            depths = depths[:cut]

            # Regions over their per-solve box budget stop here — their
            # remaining rows are dropped unprocessed and the region is
            # recorded as exhausted (the serial solver's UNKNOWN).
            over = tag_boxes[batch_tags] >= config.max_boxes
            if over.any():
                exhausted[np.unique(batch_tags[over])] = True
                keep = ~over
                batch = batch.select(keep)
                batch_tags = batch_tags[keep]
                batch_depths = batch_depths[keep]
                if len(batch) == 0:
                    continue

            m = len(batch)
            stats.boxes_processed += m
            np.add.at(tag_boxes, batch_tags, 1)
            stats.max_depth = max(stats.max_depth, int(batch_depths.max()))

            alive, all_true = self._prune_masks(tapes, constraints, batch)

            stats.boxes_pruned += int(m - alive.sum())

            def record(tag: int, box: Box) -> None:
                nonlocal best_tag, best_box
                if best_tag is None or tag < best_tag:
                    best_tag, best_box = tag, box

            certain = alive & all_true
            if certain.any():
                i = int(np.flatnonzero(certain)[0])
                stats.boxes_certain += 1
                record(int(batch_tags[i]), batch.box_at(i))

            alive_idx = np.flatnonzero(alive & ~certain)
            survivors = batch.select(alive_idx)
            survivor_tags = batch_tags[alive_idx]
            survivor_depths = batch_depths[alive_idx]
            if best_tag is not None:
                keep = survivor_tags < best_tag
                survivors = survivors.select(keep)
                survivor_tags = survivor_tags[keep]
                survivor_depths = survivor_depths[keep]

            if len(survivors):
                pre_small = survivors.raw_widths().max(axis=1) <= config.delta
                for row in np.flatnonzero(pre_small):
                    record(int(survivor_tags[row]), survivors.box_at(int(row)))
                keep = ~pre_small
                if best_tag is not None:
                    keep &= survivor_tags < best_tag
                survivors = survivors.select(keep)
                survivor_tags = survivor_tags[keep]
                survivor_depths = survivor_depths[keep]

            if len(survivors) and contract_ok:
                contracted, c_alive = self._contract_rows(
                    contractors,
                    survivors,
                    config.contractor_rounds,
                )
                stats.contractions += len(survivors)
                stats.boxes_pruned += int((~c_alive).sum())
                post_small = contracted.max_widths() <= config.delta
                for row in np.flatnonzero(c_alive & post_small):
                    record(int(survivor_tags[row]), contracted.box_at(int(row)))
                keep = c_alive & ~post_small
                if best_tag is not None:
                    keep &= survivor_tags < best_tag
                survivors = contracted.select(keep)
                survivor_tags = survivor_tags[keep]
                survivor_depths = survivor_depths[keep]

            if best_tag is not None and len(tags):
                keep = tags < best_tag
                if not keep.all():
                    frontier = frontier.select(keep)
                    tags = tags[keep]
                    depths = depths[keep]

            if len(survivors):
                children = _interleave_halves(*survivors.bisect_widest())
                fanout = 2
                depth_inc = 1
                # Narrow frontiers starve the vectorized passes: split a
                # second time so the next batch is wide enough to
                # amortize the fixed per-pass NumPy cost.  The extra
                # split only reorders work — every child still shrinks
                # monotonically, so soundness and δ-completeness hold.
                if len(children) < _MULTISECTION_THRESHOLD:
                    children = _interleave_halves(*children.bisect_widest())
                    fanout = 4
                    depth_inc = 2
                frontier = (
                    BoxArray.concatenate([frontier, children])
                    if len(frontier)
                    else children
                )
                tags = np.concatenate([tags, np.repeat(survivor_tags, fanout)])
                depths = np.concatenate(
                    [depths, np.repeat(survivor_depths + depth_inc, fanout)]
                )
                stats.boxes_split += len(survivors) * (fanout - 1)

            if best_tag is not None and not len(frontier):
                return wrap_up()

        return wrap_up()

    def _witness_result(
        self,
        box: Box,
        constraints: Sequence[Constraint],
        names: Sequence[str],
        stats: SolverStats,
    ) -> SmtResult:
        witness = box.midpoint()
        validated = all(
            c.satisfied_at(witness, names, slack=self.config.delta)
            for c in constraints
        )
        return SmtResult(
            Verdict.DELTA_SAT,
            self.config.delta,
            witness=witness,
            witness_box=box,
            witness_validated=validated,
            stats=stats,
        )


def solve_conjunction_batched(
    constraints: Sequence[Constraint],
    region: Box,
    variable_names: Sequence[str],
    config: IcpConfig | None = None,
) -> SmtResult:
    """One-shot convenience wrapper around :class:`BatchedIcpSolver`."""
    return BatchedIcpSolver(config).solve(constraints, region, variable_names)
