"""Ablation studies on the design choices the paper calls out.

Four sweeps, each returning printable row records:

* **δ precision** — solver precision vs verification time and verdict
  (the paper notes dReal's branch-and-prune cost is precision driven);
* **template class** — pure quadratic vs quadratic+linear vs quartic
  (the paper assumes "suitable templates, such as SOS polynomials");
* **seed-trace count** — how much simulation evidence the LP needs
  before the first candidate survives check (5) (the "simulation-guided"
  premise);
* **activation function** — tansig vs logsig controllers (the paper
  stresses support for arbitrary nonlinear activations beyond ReLU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..api import VerificationPipeline, dubins_scenario, run
from ..barrier import (
    PolynomialTemplate,
    QuadraticTemplate,
    SynthesisConfig,
)
from ..learning import proportional_controller_network
from ..smt import IcpConfig

__all__ = [
    "AblationRow",
    "run_delta_sweep",
    "run_template_comparison",
    "run_trace_count_sweep",
    "run_activation_comparison",
    "format_ablation",
]


@dataclass
class AblationRow:
    """One configuration's outcome."""

    label: str
    status: str
    iterations: int
    query_seconds: float
    total_seconds: float
    level: float | None


def _row(label: str, report) -> AblationRow:
    return AblationRow(
        label=label,
        status=report.status.value,
        iterations=report.candidate_iterations,
        query_seconds=report.query_seconds,
        total_seconds=report.total_seconds,
        level=report.level,
    )


def run_delta_sweep(
    deltas: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-4),
    hidden_neurons: int = 10,
    seed: int = 0,
) -> list[AblationRow]:
    """Verification outcome vs solver precision δ."""
    scenario = dubins_scenario(hidden_neurons=hidden_neurons)
    rows = []
    for delta in deltas:
        config = SynthesisConfig(seed=seed, icp=IcpConfig(delta=delta))
        artifact = run(scenario, config=config)
        rows.append(_row(f"delta={delta:g}", artifact.report))
    return rows


def run_template_comparison(
    hidden_neurons: int = 10, seed: int = 0
) -> list[AblationRow]:
    """Quadratic vs quadratic+linear vs quartic generator templates.

    Only quadratic templates support the closed-form level-set geometry,
    so higher-degree templates are expected to stop at NO_LEVEL_SET —
    the ablation documents exactly where the paper's quadratic choice
    is load-bearing.
    """
    problem = dubins_scenario(hidden_neurons=hidden_neurons).problem()
    templates = [
        ("quadratic", QuadraticTemplate(2)),
        ("quadratic+linear", QuadraticTemplate(2, include_linear=True)),
        ("quartic", PolynomialTemplate(2, max_degree=4, min_degree=2)),
    ]
    rows = []
    for label, template in templates:
        # Non-quadratic templates cannot pass level-set selection (no
        # closed-form geometry); cap the CEX loop so the sweep stays fast.
        config = SynthesisConfig(seed=seed, max_candidate_iterations=3)
        pipeline = VerificationPipeline(template=template, config=config)
        rows.append(_row(label, pipeline.run(problem).report))
    return rows


def run_trace_count_sweep(
    trace_counts: Sequence[int] = (2, 5, 10, 20, 40),
    hidden_neurons: int = 10,
    seed: int = 0,
) -> list[AblationRow]:
    """Seed-trace count vs candidate iterations (CEX refinements)."""
    scenario = dubins_scenario(hidden_neurons=hidden_neurons)
    rows = []
    for count in trace_counts:
        config = SynthesisConfig(seed=seed, num_seed_traces=count)
        artifact = run(scenario, config=config)
        rows.append(_row(f"traces={count}", artifact.report))
    return rows


def run_activation_comparison(
    hidden_neurons: int = 10, seed: int = 0
) -> list[AblationRow]:
    """tansig vs logsig hidden activations.

    The logsig controller shifts the proportional law by the sigmoid's
    0.5 offset; re-centering via the output bias keeps the realized
    control law equivalent, exercising a genuinely different activation
    through the whole pipeline.
    """
    rows = []
    for name in ("tansig", "logsig"):
        network = proportional_controller_network(
            hidden_neurons, hidden_activation=name
        )
        if name == "logsig":
            # logsig(0) = 0.5: cancel the offset through the output bias.
            output = network.layers[-1]
            output.biases = output.biases - 0.5 * output.weights.sum(axis=1)
        scenario = dubins_scenario(network=network, name=f"dubins-{name}")
        artifact = run(scenario, config=SynthesisConfig(seed=seed))
        rows.append(_row(f"activation={name}", artifact.report))
    return rows


def format_ablation(rows: Sequence[AblationRow], title: str) -> str:
    """Render ablation rows as a table."""
    header = (
        f"{'Config':<22} {'Status':<14} {'Iters':>6} {'Query(s)':>9} "
        f"{'Total(s)':>9} {'Level':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        level = f"{row.level:.4g}" if row.level is not None else "-"
        lines.append(
            f"{row.label:<22} {row.status:<14} {row.iterations:>6d} "
            f"{row.query_seconds:>9.2f} {row.total_seconds:>9.2f} {level:>10}"
        )
    return "\n".join(lines)
