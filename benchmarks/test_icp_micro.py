"""ICP micro-benchmark: scalar vs structure-of-arrays δ-SAT solving.

Reproduces the Table-1 dubins SMT stage — the condition-(5) Lie-
derivative check on the fitted candidate plus the level-set checks (6)
and (7) — and times the ``native`` serial scalar stack against the
``batched-icp`` SoA stack (one union-seeded ``BoxArray`` frontier with
frontier-wide vectorized HC4 contraction).

Writes ``benchmarks/results/BENCH_icp.json``.  Acceptance bar: the
batched stack must cut the SMT-stage wall clock by >= 5x while
returning the same verdicts.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import get_scenario
from repro.barrier import (
    QuadraticTemplate,
    condition5_subproblems,
    condition6_subproblems,
    condition7_subproblems,
)
from repro.barrier.levelset import ellipsoid_bounding_rectangle, quadratic_forms
from repro.engine import get_engine
from repro.sim import sample_uniform

REPEATS = 3
SPEEDUP_BAR = 5.0


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_icp_micro(emit, results_dir):
    scenario = get_scenario("dubins")
    problem = scenario.problem()
    system = problem.system
    names = problem.state_names
    icp = scenario.config.icp

    native = get_engine("native")
    batched = get_engine("batched-icp")

    # The Table-1 stage inputs: LP candidate fitted on the seed traces.
    rng = np.random.default_rng(0)
    starts = sample_uniform(problem.domain.to_box(), 50, rng)
    traces = native.sim.simulate(system, starts, 12.0, 0.05)
    template = QuadraticTemplate(system.dimension)
    candidate = native.lp.fit(
        template,
        np.vstack([t.states for t in traces]),
        system,
        scenario.config.lp,
    )

    subs5 = condition5_subproblems(
        candidate.expression, problem, scenario.config.gamma
    )
    p_matrix, q_vector = quadratic_forms(template, candidate.coefficients)
    level = 0.5  # a mid-range level exercises both (6) and (7)
    subs6 = condition6_subproblems(candidate.expression, problem, level)
    subs7 = condition7_subproblems(
        candidate.expression,
        problem,
        level,
        ellipsoid_bounding_rectangle(p_matrix, q_vector, level),
    )

    def smt_stage(backend):
        return (
            backend.check(subs5, names, icp),
            backend.check(subs6, names, icp),
            backend.check(subs7, names, icp) if subs7 else None,
        )

    native_s, native_res = _best_of(REPEATS, lambda: smt_stage(native.smt))
    batched_s, batched_res = _best_of(REPEATS, lambda: smt_stage(batched.smt))
    native5_s, native5 = _best_of(REPEATS, lambda: native.smt.check(subs5, names, icp))
    batched5_s, batched5 = _best_of(REPEATS, lambda: batched.smt.check(subs5, names, icp))

    # Identical verdicts, stage-wide.
    for a, b in zip(native_res, batched_res):
        if a is not None:
            assert a.verdict is b.verdict
    assert native5.verdict is batched5.verdict

    stage_speedup = native_s / batched_s
    check5_speedup = native5_s / batched5_s

    payload = {
        "scenario": "dubins",
        "cpu_count": os.cpu_count(),
        "delta": icp.delta,
        "smt_stage": {
            "checks": ["condition5", "condition6", "condition7"],
            "subproblems": [len(subs5), len(subs6), len(subs7)],
            "verdicts": [
                r.verdict.value if r is not None else "skipped"
                for r in native_res
            ],
            "native_seconds": round(native_s, 6),
            "batched_seconds": round(batched_s, 6),
            "speedup": round(stage_speedup, 2),
        },
        "condition5": {
            "subproblems": len(subs5),
            "verdict": native5.verdict.value,
            "native_seconds": round(native5_s, 6),
            "batched_seconds": round(batched5_s, 6),
            "speedup": round(check5_speedup, 2),
        },
        "speedup_bar": SPEEDUP_BAR,
    }
    (results_dir / "BENCH_icp.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"table-1 dubins SMT stage (delta={icp.delta:g}):",
        f"  native (serial scalar ICP)  {native_s:8.4f}s",
        f"  batched-icp (SoA frontier)  {batched_s:8.4f}s   ({stage_speedup:.1f}x)",
        f"condition (5) alone ({len(subs5)} subproblems, {native5.verdict.value}):",
        f"  native   {native5_s:8.4f}s",
        f"  batched  {batched5_s:8.4f}s   ({check5_speedup:.1f}x)",
    ]
    emit("icp_micro", "\n".join(lines))

    assert stage_speedup >= SPEEDUP_BAR, (
        f"batched SMT-stage speedup {stage_speedup:.2f}x below the "
        f"{SPEEDUP_BAR}x bar"
    )
