"""Persistent warm worker pools for batch and sweep dispatch.

:func:`repro.api.run_batch` historically built a fresh
``ProcessPoolExecutor`` per call: every sweep paid worker start-up —
process spawn, interpreter + NumPy/SciPy imports on spawn-start
platforms, registry construction — before the first real solve.  A
:class:`WarmPool` keeps one executor alive across dispatches and runs a
:class:`WarmupSpec` in every worker's initializer, which imports the
full stack and exercises the family's scenario-construction and
tape/kernel-compilation code paths once (lazy imports, ufunc set-up)
before the first task arrives.  Compiled plans themselves are cached
per system instance, so per-scenario compilation still happens per
task — the warm-up amortizes the process- and module-level costs, not
the per-scenario ones.

:func:`get_warm_pool` maintains the process-global pool the sweep
runner uses: reused while the worker count matches, re-warmed (best
effort) when a new family shows up, and shut down automatically at
interpreter exit.  Everything here is optional — ``run_batch`` without
a ``pool`` argument behaves exactly as before.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass

__all__ = [
    "WarmupSpec",
    "WarmPool",
    "executor_worker_pids",
    "get_warm_pool",
    "kill_executor_workers",
    "shutdown_warm_pool",
]


def executor_worker_pids(executor: "Executor | None") -> tuple[int, ...]:
    """PIDs of a ``ProcessPoolExecutor``'s live workers (best effort).

    Reads CPython's private ``_processes`` map — the only handle the
    executor exposes to its children.  Used by the chunk supervisor to
    reap wedged workers and by fault injection to pick a victim; both
    tolerate an empty answer on future CPython layouts.
    """
    procs = getattr(executor, "_processes", None)
    if not procs:
        return ()
    return tuple(pid for pid in list(procs) if isinstance(pid, int))


def kill_executor_workers(executor: "Executor | None") -> int:
    """SIGKILL every worker of ``executor`` (best effort); returns count.

    The recovery path for a *wedged* pool: ``Executor.shutdown`` only
    asks workers to exit, which a stopped or spinning worker never will
    — SIGKILL is the one signal that always lands.  Callers abandon the
    executor right after, so half-finished tasks are resubmitted
    elsewhere (chunk execution is idempotent: results are
    content-addressed or recomputed).
    """
    killed = 0
    for pid in executor_worker_pids(executor):
        try:
            os.kill(pid, signal.SIGKILL)
            killed += 1
        except OSError:  # already gone
            pass
    return killed


@dataclass(frozen=True)
class WarmupSpec:
    """Picklable description of what each worker pre-compiles at start.

    ``families``/``scenarios`` are registry names; unknown names are
    skipped (warm-up is best effort and must never fail a dispatch).
    """

    families: tuple[str, ...] = ()
    scenarios: tuple[str, ...] = ()

    def merge(self, other: "WarmupSpec") -> "WarmupSpec":
        """Union of two specs, preserving first-seen order."""
        def union(a, b):
            return a + tuple(x for x in b if x not in a)

        return WarmupSpec(
            families=union(self.families, other.families),
            scenarios=union(self.scenarios, other.scenarios),
        )


#: the most recently merged warm-up spec, module-global so fork-started
#: workers spawned *after* an ensure_warm pick it up: the executor's
#: ``initargs`` are frozen at construction, but a forked child copies
#: this module's state at spawn time.  (Spawn-start platforms re-import
#: the module fresh and fall back to the construction-time initargs.)
_CURRENT_WARMUP = WarmupSpec()


def _warm_initializer(spec: WarmupSpec) -> None:
    """Worker initializer: warm the construction spec + any later merges."""
    _prewarm(spec.merge(_CURRENT_WARMUP))


def _prewarm(spec: WarmupSpec) -> None:
    """Run inside a worker: import the stack and compile scenario kernels."""
    # The imports alone are the bulk of a cold worker's start-up cost on
    # spawn-start platforms (fork inherits them for free).
    from . import family as family_module
    from . import scenario as scenario_module

    def warm_scenario(scenario) -> None:
        problem = scenario.problem()
        for tape in problem.system.tapes():
            tape.kernel()

    for name in spec.families:
        try:
            warm_scenario(family_module.get_family(name).instantiate())
        except Exception:  # noqa: BLE001 - warm-up must never break dispatch
            pass
    for name in spec.scenarios:
        try:
            warm_scenario(scenario_module.get_scenario(name))
        except Exception:  # noqa: BLE001 - warm-up must never break dispatch
            pass


class WarmPool:
    """A reusable ``ProcessPoolExecutor`` with pre-warmed workers."""

    def __init__(self, workers: int, warmup: WarmupSpec | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.warmup = warmup or WarmupSpec()
        self._executor: ProcessPoolExecutor | None = None
        # Serializes executor build/rebuild/teardown: the service shares
        # one pool across concurrent jobs, and two threads racing the
        # lazy construction (or an ensure_warm racing a self-heal
        # rebuild) would leak a whole ProcessPoolExecutor.
        self._lock = threading.RLock()

    @property
    def executor(self) -> Executor:
        """The live executor (workers started lazily on first use).

        A broken executor (a worker died mid-task, e.g. OOM-killed) is
        replaced with a fresh one here: the call that hit the crash
        still raised, but the pool must not stay poisoned for every
        later dispatch the way a plain long-lived executor would.
        Thread-safe: concurrent callers observe exactly one executor.
        """
        with self._lock:
            if self._executor is not None and getattr(
                self._executor, "_broken", False
            ):
                self.shutdown()
            if self._executor is None:
                global _CURRENT_WARMUP
                _CURRENT_WARMUP = _CURRENT_WARMUP.merge(self.warmup)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_warm_initializer,
                    initargs=(self.warmup,),
                )
            return self._executor

    def ensure_warm(self, spec: WarmupSpec) -> None:
        """Best-effort re-warm for an additional spec (thread-safe).

        Already-running workers get fire-and-forget ``_prewarm`` tasks
        (there is no way — nor need — to target each worker exactly
        once); workers the executor spawns later pick the merged spec up
        through the module-global snapshot a forked child inherits.
        """
        global _CURRENT_WARMUP
        with self._lock:
            merged = self.warmup.merge(spec)
            if merged == self.warmup:
                return
            self.warmup = merged
            _CURRENT_WARMUP = _CURRENT_WARMUP.merge(spec)
            if self._executor is not None and not getattr(
                self._executor, "_broken", False
            ):
                for _ in range(self.workers):
                    self._executor.submit(_prewarm, spec)

    def shutdown(self, cancel: bool = True) -> None:
        """Stop the workers (the next use starts fresh ones).

        ``cancel=False`` lets already-submitted work finish in the old
        executor's processes (used when the global pool is *replaced*
        while another thread may still be awaiting its futures —
        cancelling those would surface as an unrelated CancelledError
        in that thread's dispatch).  Thread-safe against concurrent
        ``executor`` rebuilds and ``ensure_warm`` calls.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=cancel)
                self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executor is not None else "idle"
        return f"<WarmPool workers={self.workers} {state}>"


_GLOBAL_POOL: WarmPool | None = None
_GLOBAL_POOL_LOCK = threading.Lock()


def get_warm_pool(workers: int, warmup: WarmupSpec | None = None) -> WarmPool:
    """The process-global warm pool, (re)sized to ``workers``.

    Reuses the existing pool (and its warm workers) when the size
    matches, merging any new warm-up spec into it; a size change shuts
    the old pool down and builds a new one.  Thread-safe: concurrent
    callers with the same size always receive the same pool.
    """
    global _GLOBAL_POOL
    with _GLOBAL_POOL_LOCK:
        if _GLOBAL_POOL is None or _GLOBAL_POOL.workers != workers:
            if _GLOBAL_POOL is not None:
                # Replacement, not teardown: another thread may still be
                # awaiting futures on the old executor — let them drain.
                _GLOBAL_POOL.shutdown(cancel=False)
            _GLOBAL_POOL = WarmPool(workers, warmup)
        elif warmup is not None:
            _GLOBAL_POOL.ensure_warm(warmup)
        return _GLOBAL_POOL


def shutdown_warm_pool() -> None:
    """Tear down the global pool (no-op when none is live)."""
    global _GLOBAL_POOL
    with _GLOBAL_POOL_LOCK:
        if _GLOBAL_POOL is not None:
            _GLOBAL_POOL.shutdown()
            _GLOBAL_POOL = None


atexit.register(shutdown_warm_pool)
