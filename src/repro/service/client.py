"""Thin stdlib HTTP client for the verification service.

:class:`ServiceClient` wraps the JSON API of
:class:`~repro.service.server.ServiceServer` with plain
``urllib.request`` calls — no sessions, no external dependencies.  The
CLI's ``repro submit`` / ``jobs`` / ``watch`` / ``cancel`` commands are
thin veneers over this class, and it is the supported way to drive the
service from Python::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:7463")
    job = client.submit("dubins", grid={"speed": "1:2:2", "nn_width": "4"})
    final = client.wait(job["id"], timeout=300)
    runs = client.result(job["id"])["runs"]
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Iterator, Mapping

from ..errors import ReproError
from .server import DEFAULT_PORT

__all__ = ["ServiceClient", "ServiceError"]

#: states after which a job will never change again
_TERMINAL = frozenset(("DONE", "FAILED", "CANCELLED", "DEAD"))

#: connection-level failures worth retrying on idempotent requests
_RETRYABLE = (ConnectionResetError, ConnectionRefusedError, BrokenPipeError)


def _is_retryable(exc: BaseException) -> bool:
    """Whether a transport failure is safe to retry (idempotent GETs).

    ``urllib`` surfaces refused/reset connections either raw (from
    ``http.client``) or wrapped in :class:`urllib.error.URLError`;
    HTTP-level errors (a real response arrived) are never retried here.
    """
    if isinstance(exc, urllib.error.HTTPError):
        return False
    if isinstance(exc, _RETRYABLE):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(exc.reason, _RETRYABLE + (OSError,))
    return False


class ServiceError(ReproError):
    """A service request failed (HTTP error, bad response, timeout)."""

    def __init__(self, message: str, status: "int | None" = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous client bound to one server base URL."""

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 60.0,
        retries: int = 3,
        retry_base: float = 0.1,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        #: transport-retry budget for idempotent (GET) requests
        self.retries = max(0, retries)
        self.retry_base = retry_base

    def _retry_sleep(self, attempt: int) -> None:
        """Jittered capped-exponential pause between transport retries."""
        delay = min(2.0, self.retry_base * (2.0 ** attempt))
        time.sleep(delay * (0.5 + 0.5 * random.random()))

    def _request(
        self,
        method: str,
        path: str,
        body: "Mapping[str, object] | None" = None,
        retries: int = 0,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get("error", "")
                except Exception:  # noqa: BLE001 - error body is best effort
                    detail = exc.reason
                raise ServiceError(
                    f"{method} {path} failed ({exc.code}): {detail}", exc.code
                ) from None
            except _RETRYABLE + (urllib.error.URLError,) as exc:
                if attempt < retries and _is_retryable(exc):
                    attempt += 1
                    self._retry_sleep(attempt - 1)
                    continue
                reason = getattr(exc, "reason", exc)
                raise ServiceError(
                    f"cannot reach service at {self.url}: {reason}"
                ) from None

    # ------------------------------------------------------------------
    # API calls
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + queue/fleet stats."""
        return self._request("GET", "/v1/healthz", retries=self.retries)

    def submit(
        self,
        target: str,
        grid: "Mapping[str, object] | None" = None,
        samples: "int | None" = None,
        overrides: "Mapping[str, object] | None" = None,
        seed: int = 0,
        engine: "str | None" = None,
        priority: int = 0,
        max_retries: int = 0,
    ) -> dict:
        """Submit a scenario/family job; returns its status dict."""
        body: dict[str, object] = {"target": target, "seed": seed}
        if grid is not None:
            body["grid"] = dict(grid)
        if samples is not None:
            body["samples"] = samples
        if overrides is not None:
            body["overrides"] = dict(overrides)
        if engine is not None:
            body["engine"] = engine
        if priority:
            body["priority"] = priority
        if max_retries:
            body["max_retries"] = max_retries
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> list[dict]:
        """All jobs' status dicts, newest first."""
        return self._request("GET", "/v1/jobs", retries=self.retries)["jobs"]

    def job(self, job_id: str) -> dict:
        """One job's status dict."""
        return self._request("GET", f"/v1/jobs/{job_id}", retries=self.retries)

    def result(self, job_id: str) -> dict:
        """Job status + per-point runs (``artifact`` None = pending)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/result", retries=self.retries
        )

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; returns the resulting status dict."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: "float | None" = None,
        poll: float = 0.5,
    ) -> dict:
        """Poll until the job reaches a terminal state.

        Raises :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in _TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def stream(self, job_id: str, after: int = 0) -> Iterator[dict]:
        """Yield the job's NDJSON progress events until it terminates.

        A dropped connection (reset mid-read, or a clean EOF before the
        job's terminal event) is resumed transparently: the client
        reconnects with ``?after=<last seen seq>`` so the server replays
        only the missed suffix — no duplicates, no gaps.  The retry
        budget (``self.retries``) bounds consecutive failed reconnects.
        """
        last_seq = after
        failures = 0
        while True:
            saw_final = False
            try:
                for event in self._stream_once(job_id, last_seq):
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        last_seq = max(last_seq, seq)
                    failures = 0
                    if event.get("type") == "job" and event.get("state") in _TERMINAL:
                        saw_final = True
                    yield event
            except ServiceError:
                raise
            except _RETRYABLE + (urllib.error.URLError, OSError) as exc:
                if failures >= self.retries or not (
                    _is_retryable(exc) or isinstance(exc, OSError)
                ):
                    raise ServiceError(
                        f"stream of {job_id} dropped: {exc}"
                    ) from None
                failures += 1
                self._retry_sleep(failures - 1)
                continue
            if saw_final:
                return
            # Clean EOF without a terminal event: the server went away
            # mid-job — resume from the last seq like any other drop.
            if failures >= self.retries:
                raise ServiceError(
                    f"stream of {job_id} ended before a terminal state"
                )
            failures += 1
            self._retry_sleep(failures - 1)

    def _stream_once(self, job_id: str, after: int) -> Iterator[dict]:
        """One streaming connection attempt (errors propagate raw)."""
        suffix = f"?after={after}" if after else ""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/events{suffix}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"stream of {job_id} failed ({exc.code})", exc.code
            ) from None
