"""Lyapunov-equation candidate seeding.

An alternative to the trace-driven LP: linearize the closed loop at its
equilibrium (symbolic Jacobian through :func:`repro.expr.differentiate`),
solve the Lyapunov equation ``A^T P + P A = -Q``, and use ``W = x^T P x``
as the generator candidate.  For systems whose nonlinearity is mild over
the domain this skips simulation entirely; when the linearization is too
local the SMT check (5) refutes the candidate and the main loop falls
back to the simulation-guided LP — the two generators compose cleanly.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..dynamics import ContinuousSystem
from ..errors import SynthesisError
from ..expr import differentiate, evaluate
from .lp import GeneratorCandidate
from .templates import QuadraticTemplate

__all__ = ["symbolic_jacobian", "linearize", "lyapunov_candidate"]


def symbolic_jacobian(system: ContinuousSystem) -> list[list]:
    """Symbolic Jacobian matrix ``J[i][j] = d f_i / d x_j``."""
    return [
        [differentiate(expr, name) for name in system.state_names]
        for expr in system.field_exprs
    ]


def linearize(
    system: ContinuousSystem, equilibrium: "np.ndarray | None" = None
) -> np.ndarray:
    """Numeric Jacobian ``A`` of the vector field at an equilibrium.

    Defaults to the origin.  Raises when the given point is not an
    equilibrium (the linear model would be meaningless for Lyapunov
    analysis).
    """
    n = system.dimension
    x0 = np.zeros(n) if equilibrium is None else np.asarray(equilibrium, float)
    residual = system.f(x0)
    if np.linalg.norm(residual) > 1e-6:
        raise SynthesisError(
            f"{x0} is not an equilibrium: |f| = {np.linalg.norm(residual):.3g}"
        )
    env = dict(zip(system.state_names, (float(v) for v in x0)))
    jac = symbolic_jacobian(system)
    return np.array(
        [[float(evaluate(entry, env)) for entry in row] for row in jac]
    )


def lyapunov_candidate(
    system: ContinuousSystem,
    q_matrix: "np.ndarray | None" = None,
    equilibrium: "np.ndarray | None" = None,
) -> GeneratorCandidate:
    """Quadratic generator from the linearization's Lyapunov equation.

    Solves ``A^T P + P A = -Q`` (``Q = I`` by default) and packages
    ``W(x) = x^T P x`` as a :class:`GeneratorCandidate` with coefficients
    normalized into the LP's unit box, so it is interchangeable with an
    LP-fitted candidate everywhere downstream.

    Raises
    ------
    SynthesisError
        When the linearization is not Hurwitz (no quadratic Lyapunov
        function exists even locally).
    """
    a_matrix = linearize(system, equilibrium)
    eigenvalues = np.linalg.eigvals(a_matrix)
    if eigenvalues.real.max() >= 0.0:
        raise SynthesisError(
            "linearization is not Hurwitz (max Re lambda = "
            f"{eigenvalues.real.max():.3g}); no local quadratic Lyapunov "
            "function exists"
        )
    n = system.dimension
    q_matrix = np.eye(n) if q_matrix is None else np.asarray(q_matrix, float)
    p_matrix = scipy.linalg.solve_lyapunov(a_matrix.T, -q_matrix)
    p_matrix = 0.5 * (p_matrix + p_matrix.T)

    template = QuadraticTemplate(n)
    coefficients = np.empty(template.basis_size)
    index = 0
    for i in range(n):
        for j in range(i, n):
            coefficients[index] = (
                p_matrix[i, i] if i == j else 2.0 * p_matrix[i, j]
            )
            index += 1
    scale = np.abs(coefficients).max()
    if scale > 0:
        coefficients = coefficients / scale

    # The "margin" of an analytic candidate: the certified linear decay
    # rate lambda_min(Q) / (2 lambda_max(P)), scale-invariant.
    margin = float(
        np.linalg.eigvalsh(q_matrix).min()
        / (2.0 * np.linalg.eigvalsh(p_matrix).max())
    )
    return GeneratorCandidate(template, coefficients, margin, system.state_names)
