"""Free-function façade over :class:`~repro.intervals.interval.Interval`.

These wrappers accept either intervals or plain floats, which keeps
numeric code and interval code textually identical — the expression
compiler (:mod:`repro.expr.compile`) exploits this to evaluate one tape
in both semantics.

Vectorized interval helpers for (lower, upper) ndarray pairs live here
too; they are the hot path of the neural-network interval forward pass.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from .array import IntervalArray
from .interval import Interval

__all__ = [
    "isin",
    "icos",
    "itan",
    "itanh",
    "isigmoid",
    "iexp",
    "ilog",
    "isqrt",
    "iabs",
    "iatan",
    "imin",
    "imax",
    "ipow",
    "interval_matvec",
    "interval_affine",
    "interval_tanh_bounds",
    "interval_sigmoid_bounds",
    "interval_relu_bounds",
]

Scalar = Union[Interval, "IntervalArray", float, int]

#: types that carry interval semantics through the ``i*`` dispatchers;
#: :class:`IntervalArray` rides along so one expression walker serves the
#: scalar, interval, and batched-interval modes alike
_INTERVALS = (Interval, IntervalArray)


def _lift(value: Scalar) -> "Interval | IntervalArray | float":
    return value if isinstance(value, _INTERVALS) else float(value)


def isin(x: Scalar):
    """Interval/scalar sine."""
    x = _lift(x)
    return x.sin() if isinstance(x, _INTERVALS) else math.sin(x)


def icos(x: Scalar):
    """Interval/scalar cosine."""
    x = _lift(x)
    return x.cos() if isinstance(x, _INTERVALS) else math.cos(x)


def itan(x: Scalar):
    """Interval/scalar tangent."""
    x = _lift(x)
    return x.tan() if isinstance(x, _INTERVALS) else math.tan(x)


def itanh(x: Scalar):
    """Interval/scalar hyperbolic tangent (the paper's ``tansig``)."""
    x = _lift(x)
    return x.tanh() if isinstance(x, _INTERVALS) else math.tanh(x)


def isigmoid(x: Scalar):
    """Interval/scalar logistic sigmoid."""
    x = _lift(x)
    if isinstance(x, _INTERVALS):
        return x.sigmoid()
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def iexp(x: Scalar):
    """Interval/scalar exponential."""
    x = _lift(x)
    return x.exp() if isinstance(x, _INTERVALS) else math.exp(x)


def ilog(x: Scalar):
    """Interval/scalar natural logarithm."""
    x = _lift(x)
    return x.log() if isinstance(x, _INTERVALS) else math.log(x)


def isqrt(x: Scalar):
    """Interval/scalar square root."""
    x = _lift(x)
    return x.sqrt() if isinstance(x, _INTERVALS) else math.sqrt(x)


def iabs(x: Scalar):
    """Interval/scalar absolute value."""
    x = _lift(x)
    return x.abs() if isinstance(x, _INTERVALS) else abs(x)


def iatan(x: Scalar):
    """Interval/scalar arctangent."""
    x = _lift(x)
    return x.atan() if isinstance(x, _INTERVALS) else math.atan(x)


def imin(a: Scalar, b: Scalar):
    """Pointwise minimum in either semantics."""
    a = _lift(a)
    b = _lift(b)
    if isinstance(a, _INTERVALS) or isinstance(b, _INTERVALS):
        # min is commutative: lead with the "wider" type so its
        # coercion handles the other operand (array > interval > float).
        if not isinstance(a, _INTERVALS) or (
            isinstance(b, IntervalArray) and not isinstance(a, IntervalArray)
        ):
            a, b = b, a
        return a.min_with(b)
    return min(a, b)


def imax(a: Scalar, b: Scalar):
    """Pointwise maximum in either semantics."""
    a = _lift(a)
    b = _lift(b)
    if isinstance(a, _INTERVALS) or isinstance(b, _INTERVALS):
        # max is commutative: lead with the "wider" type so its
        # coercion handles the other operand (array > interval > float).
        if not isinstance(a, _INTERVALS) or (
            isinstance(b, IntervalArray) and not isinstance(a, IntervalArray)
        ):
            a, b = b, a
        return a.max_with(b)
    return max(a, b)


def ipow(x: Scalar, n: int):
    """Integer power in either semantics."""
    x = _lift(x)
    return x**n if isinstance(x, _INTERVALS) else float(x) ** n


# ----------------------------------------------------------------------
# Vectorized interval linear algebra (NN hot path)
# ----------------------------------------------------------------------
def interval_matvec(
    matrix: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sound bounds of ``matrix @ x`` for ``x`` in the box ``[lo, hi]``.

    Splits the matrix into positive and negative parts so each output
    bound is a single pair of matrix-vector products.  A small outward
    widening (2 ulp-scale relative slack) accounts for float rounding in
    the dot products.
    """
    pos = np.maximum(matrix, 0.0)
    neg = np.minimum(matrix, 0.0)
    out_lo = pos @ lo + neg @ hi
    out_hi = pos @ hi + neg @ lo
    # Accumulated rounding error of an n-term dot product is bounded by
    # (n + 2) * eps * sum(|a_i| * |x_i|); widen by that amount outward.
    mag = np.abs(matrix) @ np.maximum(np.abs(lo), np.abs(hi))
    pad = (matrix.shape[-1] + 2) * np.finfo(float).eps * mag + _WIDEN_ABS
    return out_lo - pad, out_hi + pad


def interval_affine(
    matrix: np.ndarray, bias: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sound bounds of ``matrix @ x + bias`` over the box ``[lo, hi]``."""
    out_lo, out_hi = interval_matvec(matrix, lo, hi)
    return _widen_pair(out_lo + bias, out_hi + bias)


def interval_tanh_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Component-wise tanh image bounds (monotone, clamped to [-1, 1])."""
    out_lo, out_hi = _widen_pair(np.tanh(lo), np.tanh(hi))
    return np.maximum(out_lo, -1.0), np.minimum(out_hi, 1.0)


def interval_sigmoid_bounds(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Component-wise logistic-sigmoid image bounds (monotone, in [0, 1])."""
    out_lo, out_hi = _widen_pair(_stable_sigmoid(lo), _stable_sigmoid(hi))
    return np.maximum(out_lo, 0.0), np.minimum(out_hi, 1.0)


def interval_relu_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Component-wise ReLU image bounds (exact: max with zero)."""
    return np.maximum(lo, 0.0), np.maximum(hi, 0.0)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    pos = x >= 0.0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


# Relative widening factor: a few ulps of double precision, scaled by
# magnitude, dominates accumulated rounding in short dot products.
_WIDEN_REL = 4.0 * np.finfo(float).eps
_WIDEN_ABS = 4.0 * np.finfo(float).tiny


def _widen_pair(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pad_lo = _WIDEN_REL * np.abs(lo) + _WIDEN_ABS
    pad_hi = _WIDEN_REL * np.abs(hi) + _WIDEN_ABS
    return lo - pad_lo, hi + pad_hi
