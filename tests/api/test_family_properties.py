"""Property-based tests for ScenarioFamily grid/sample/mini-language.

Hypothesis sweeps the parameter machinery the fuzz harness leans on:
the ``lo:hi:count`` / comma-list grid mini-language, `grid`'s
cartesian expansion, `sample`'s bounds discipline, and the canonical
point-name scheme the artifact store keys off.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import get_family
from repro.api.family import format_param_value, parse_grid_values
from repro.errors import ReproError

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# parse_grid_values — the grid mini-language
# ----------------------------------------------------------------------
class TestParseGridValues:
    @given(
        lo=finite_floats,
        hi=finite_floats,
        count=st.integers(min_value=1, max_value=25),
    )
    def test_range_spec_roundtrip(self, lo, hi, count):
        values = parse_grid_values(f"{lo!r}:{hi!r}:{count}")
        assert len(values) == count
        assert values[0] == pytest.approx(lo)
        if count > 1:
            assert values[-1] == pytest.approx(hi)
            steps = [b - a for a, b in zip(values, values[1:])]
            assert all(
                step == pytest.approx(steps[0], abs=1e-6) for step in steps
            )

    @given(st.lists(finite_floats, min_size=1, max_size=8))
    def test_comma_list_roundtrip(self, values):
        text = ",".join(repr(v) for v in values)
        parsed = parse_grid_values(text)
        assert parsed == pytest.approx(values)

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll",), whitelist_characters="_"
                ),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_non_numeric_tokens_stay_strings(self, tokens):
        parsed = parse_grid_values(",".join(tokens))
        assert parsed == tokens

    @pytest.mark.parametrize(
        "bad", ["", "1:2", "1:2:3:4", "a:b:3", "1:2:0", "1,,2"]
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ReproError):
            parse_grid_values(bad)


# ----------------------------------------------------------------------
# grid — cartesian expansion
# ----------------------------------------------------------------------
class TestGrid:
    @given(
        n_damping=st.integers(min_value=1, max_value=5),
        n_rotation=st.integers(min_value=1, max_value=5),
    )
    def test_grid_size_is_the_product(self, n_damping, n_rotation):
        family = get_family("linear")
        points = family.grid(
            {
                "damping": f"0.2:0.8:{n_damping}",
                "rotation": f"0.5:1.5:{n_rotation}",
            }
        )
        assert len(points) == n_damping * n_rotation
        names = {family.scenario_name(p) for p in points}
        assert len(names) == len(points)

    @given(count=st.integers(min_value=1, max_value=6))
    def test_point_names_stable_under_grid_growth(self, count):
        """Growing an axis must not rename the points already in it.

        Names depend only on the parameter values — a sweep that widens
        its grid keeps every cache hit from the narrower one.
        """
        family = get_family("linear")
        axis = [0.2 + 0.1 * i for i in range(count)]
        small = family.grid({"damping": axis})
        grown = family.grid({"damping": axis + [0.95]})
        small_names = [family.scenario_name(p) for p in small]
        grown_names = [family.scenario_name(p) for p in grown]
        assert grown_names[: len(small_names)] == small_names

    def test_grid_point_name_is_order_independent(self):
        family = get_family("linear")
        point = {"damping": 0.5, "rotation": 1.25}
        reversed_point = dict(reversed(list(point.items())))
        assert family.scenario_name(point) == family.scenario_name(
            reversed_point
        )


# ----------------------------------------------------------------------
# sample — bounds discipline + determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "family_name",
    ["linear", "ackermann", "unicycle", "dubins-nn", "vanderpol"],
)
class TestSample:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        count=st.integers(min_value=1, max_value=8),
    )
    def test_samples_respect_declared_bounds(self, family_name, seed, count):
        family = get_family(family_name)
        for point in family.sample(count, seed=seed):
            for spec in family.parameters:
                value = point[spec.name]
                if spec.kind == "choice":
                    assert value in spec.choices
                    continue
                assert spec.low <= value <= spec.high
                if spec.kind == "int":
                    assert isinstance(value, int)
                else:
                    assert math.isfinite(value)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_sampling_is_seed_deterministic(self, family_name, seed):
        family = get_family(family_name)
        assert family.sample(3, seed=seed) == family.sample(3, seed=seed)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_sampled_points_instantiate_and_name_canonically(
        self, family_name, seed
    ):
        family = get_family(family_name)
        point = family.sample(1, seed=seed)[0]
        scenario = family.instantiate(**point)
        assert scenario.family == family.name
        assert scenario.name == family.scenario_name(
            family.resolve_params(point)
        )
        assert scenario.name.startswith(f"{family.name}[")


def test_format_param_value_roundtrips_compact_floats():
    """Values expressible in %g's 6 significant digits round-trip; the
    canonical name is a label, not a serialization format."""
    for value in (0.1, 1.0, 1e-7, 123.456):
        assert float(format_param_value(value)) == value
