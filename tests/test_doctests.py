"""Doctest + docstring-coverage gates for the public API surface.

Two contracts:

1. every doctest example in the public modules passes (wired into
   pytest here so ``python -m pytest`` exercises them), and
2. every name a public module exports via ``__all__`` — and every
   public method/property those classes define — carries a docstring,
   so the MkDocs site and ``help()`` never show a bare signature.
"""

from __future__ import annotations

import doctest
import importlib
import inspect

import pytest

#: modules whose doctest examples run under pytest
DOCTEST_MODULES = (
    "repro.api.family",
    "repro.api.runner",
    "repro.api.scenario",
    "repro.api.sweep",
    "repro.intervals.array",
    "repro.intervals.interval",
    "repro.smt.hc4",
    "repro.store.cache",
)

#: modules whose whole ``__all__`` must be documented
COVERAGE_MODULES = (
    "repro.api",
    "repro.api.family",
    "repro.api.sweep",
    "repro.engine",
    "repro.intervals.array",
    "repro.perf",
    "repro.smt.hc4",
    "repro.store",
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_doctests_exist_somewhere():
    """The doctest gate must not be vacuous: at least a handful of
    examples exist across the listed modules."""
    attempted = 0
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        attempted += doctest.testmod(module, verbose=False).attempted
    assert attempted >= 5


def _public_members(obj):
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, (property, staticmethod, classmethod)):
            yield name, member


@pytest.mark.parametrize("module_name", COVERAGE_MODULES)
def test_exported_names_are_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for attr in getattr(module, "__all__", ()):
        obj = getattr(module, attr)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # re-exported constants document themselves in situ
        if not inspect.getdoc(obj):
            missing.append(f"{module_name}.{attr}")
        if inspect.isclass(obj):
            for name, member in _public_members(obj):
                if not inspect.getdoc(
                    member.fget if isinstance(member, property) else member
                ):
                    missing.append(f"{module_name}.{attr}.{name}")
    assert not missing, "undocumented exports: " + ", ".join(missing)
