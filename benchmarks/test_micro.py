"""Microbenchmarks of the performance-critical substrates.

These are regression guards, not paper artifacts: batched interval tape
evaluation (the ICP hot path), the NN vectorized interval pass, the
generator LP, and a single UNSAT proof of the paper's Eq. (5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    QuadraticTemplate,
    condition5_subproblems,
    fit_generator,
)
from repro.dynamics import error_dynamics_system
from repro.expr import compile_expression, var
from repro.experiments import case_study_controller, paper_problem
from repro.smt import check_exists_on_boxes


@pytest.fixture(scope="module")
def system100():
    return error_dynamics_system(case_study_controller(100))


def test_bench_tape_eval_boxes(benchmark, system100):
    """Batched interval evaluation of a 100-neuron closed-loop field."""
    tape = compile_expression(system100.field_exprs[1], system100.state_names)
    rng = np.random.default_rng(0)
    lo = rng.uniform([-5, -1.4], [4, 1.2], size=(512, 2))
    hi = lo + 0.25

    out_lo, out_hi = benchmark(tape.eval_boxes, lo, hi)
    assert np.all(out_lo <= out_hi)


def test_bench_tape_eval_points(benchmark, system100):
    """Vectorized numeric evaluation over 4096 points."""
    tape = compile_expression(system100.field_exprs[1], system100.state_names)
    rng = np.random.default_rng(0)
    points = rng.uniform([-5, -1.4], [5, 1.4], size=(4096, 2))

    values = benchmark(tape.eval_points, points)
    assert values.shape == (4096,)


def test_bench_nn_interval_pass(benchmark):
    """Vectorized interval forward pass through a 1000-neuron layer."""
    network = case_study_controller(1000)
    lo = np.array([-1.0, -0.4])
    hi = np.array([1.0, 0.4])

    out_lo, out_hi = benchmark(network.interval_forward, lo, hi)
    assert out_lo[0] <= out_hi[0]


def test_bench_generator_lp(benchmark, system100):
    """The margin-maximizing LP on 2000 sample points."""
    rng = np.random.default_rng(0)
    points = rng.uniform([-4.5, -1.3], [4.5, 1.3], size=(2000, 2))
    template = QuadraticTemplate(2)

    candidate = benchmark(fit_generator, template, points, system100)
    assert candidate.margin > 0.0


def test_bench_condition5_unsat_proof(benchmark, system100):
    """One complete UNSAT proof of Eq. (5) for a fitted candidate."""
    problem = paper_problem(case_study_controller(100))
    rng = np.random.default_rng(0)
    points = rng.uniform([-4.5, -1.3], [4.5, 1.3], size=(2000, 2))
    candidate = fit_generator(QuadraticTemplate(2), points, problem.system)
    subproblems = condition5_subproblems(candidate.expression, problem, 1e-6)

    result = benchmark.pedantic(
        check_exists_on_boxes,
        args=(subproblems, problem.state_names),
        rounds=1,
        iterations=1,
    )
    assert result.is_unsat
