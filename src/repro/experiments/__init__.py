"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.experiments.table1` — Table 1 (timing vs network size)
* :mod:`repro.experiments.figure4` — Figure 4 (policy-search evolution)
* :mod:`repro.experiments.figure5` — Figure 5 (phase portrait + barrier)
* :mod:`repro.experiments.ablations` — design-choice sweeps
* :mod:`repro.experiments.setup` — the Section 4.3 constants
"""

from .ablations import (
    AblationRow,
    format_ablation,
    run_activation_comparison,
    run_delta_sweep,
    run_template_comparison,
    run_trace_count_sweep,
)
from .figure4 import Figure4Data, Figure4Panel, format_figure4, run_figure4
from .figure5 import (
    Figure5Data,
    ellipse_boundary_points,
    format_figure5,
    render_ascii,
    run_figure5,
)
from .setup import (
    EPSILON,
    GAMMA,
    SPEED,
    case_study_controller,
    paper_initial_set,
    paper_problem,
    paper_unsafe_set,
)
from .table1 import PAPER_NEURON_COUNTS, Table1Row, format_table1, run_table1

__all__ = [
    "AblationRow",
    "EPSILON",
    "Figure4Data",
    "Figure4Panel",
    "Figure5Data",
    "GAMMA",
    "PAPER_NEURON_COUNTS",
    "SPEED",
    "Table1Row",
    "case_study_controller",
    "ellipse_boundary_points",
    "format_ablation",
    "format_figure4",
    "format_figure5",
    "format_table1",
    "paper_initial_set",
    "paper_problem",
    "paper_unsafe_set",
    "render_ascii",
    "run_activation_comparison",
    "run_delta_sweep",
    "run_figure4",
    "run_figure5",
    "run_table1",
    "run_template_comparison",
    "run_trace_count_sweep",
]
