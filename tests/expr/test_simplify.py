"""Simplifier correctness: semantics preserved, identities applied."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.expr import (
    Const,
    Var,
    cos,
    evaluate,
    exp,
    log,
    maximum,
    minimum,
    simplify,
    sin,
    sqrt,
    structurally_equal,
    tanh,
    var,
)

X, Y = var("x"), var("y")


def is_const(e, value=None):
    return isinstance(e, Const) and (value is None or e.value == value)


class TestIdentities:
    def test_add_zero(self):
        assert simplify(X + 0.0) is X
        assert simplify(0.0 + X) is X

    def test_sub_zero(self):
        assert simplify(X - 0.0) is X

    def test_zero_minus(self):
        e = simplify(0.0 - X)
        assert evaluate(e, {"x": 3.0}) == -3.0

    def test_mul_one(self):
        assert simplify(X * 1.0) is X
        assert simplify(1.0 * X) is X

    def test_mul_zero(self):
        assert is_const(simplify(X * 0.0), 0.0)
        assert is_const(simplify(0.0 * X), 0.0)

    def test_div_one(self):
        assert simplify(X / 1.0) is X

    def test_pow_zero_one(self):
        assert is_const(simplify(X**0), 1.0)
        assert simplify(X**1) is X

    def test_double_negation(self):
        assert simplify(-(-X)) is X

    def test_constant_folding_arithmetic(self):
        e = (Const(2) + Const(3)) * (Const(10) - Const(4))
        assert is_const(simplify(e), 30.0)

    def test_constant_folding_unary(self):
        assert simplify(sin(Const(0.0))).value == 0.0
        assert simplify(exp(Const(0.0))).value == 1.0
        assert simplify(tanh(Const(0.0))).value == 0.0
        assert simplify(cos(Const(0.0))).value == 1.0

    def test_constant_folding_respects_domain(self):
        # log(-1) must not fold into a NaN constant.
        e = simplify(log(Const(-1.0)))
        assert not is_const(e)
        e2 = simplify(sqrt(Const(-1.0)))
        assert not is_const(e2)

    def test_min_max_folding(self):
        assert is_const(simplify(minimum(Const(2), Const(5))), 2.0)
        assert is_const(simplify(maximum(Const(2), Const(5))), 5.0)

    def test_idempotent(self):
        e = sin(X) * 1.0 + 0.0 * Y + (X + 0.0)
        once = simplify(e)
        twice = simplify(once)
        assert structurally_equal(once, twice)


class TestStructuralEquality:
    def test_equal_trees(self):
        assert structurally_equal(X + Y, var("x") + var("y"))

    def test_different_shape(self):
        assert not structurally_equal(X + Y, X * Y)

    def test_different_constant(self):
        assert not structurally_equal(X + 1.0, X + 2.0)

    def test_different_var(self):
        assert not structurally_equal(X, Y)

    def test_different_pow(self):
        assert not structurally_equal(X**2, X**3)

    def test_different_unary_op(self):
        assert not structurally_equal(sin(X), cos(X))


POINT = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestSemanticsPreserved:
    @given(x=POINT, y=POINT)
    def test_random_expression_semantics(self, x, y):
        candidates = [
            (X + 0.0) * (1.0 * Y) - 0.0 * sin(X),
            sin(X * 1.0) + cos(Y + 0.0),
            (X**1) * (Y**0) + tanh(X - 0.0),
            -(-(X * Y)) + Const(2.0) * Const(3.0),
            minimum(X, Y) + maximum(X, Y),  # = x + y
        ]
        env = {"x": x, "y": y}
        for e in candidates:
            assert evaluate(simplify(e), env) == pytest.approx(
                evaluate(e, env), rel=1e-12, abs=1e-12
            )
