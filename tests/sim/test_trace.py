"""Trace data-structure tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Trace


@pytest.fixture
def trace():
    times = np.linspace(0.0, 1.0, 11)
    states = np.stack([times, times**2], axis=1)
    inputs = times[:, None] * 3.0
    return Trace(times, states, inputs)


class TestValidation:
    def test_basic(self, trace):
        assert len(trace) == 11
        assert trace.dimension == 2
        assert trace.duration == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(SimulationError):
            Trace(np.array([0.0, 1.0]), np.zeros((3, 2)))

    def test_mismatched_inputs(self):
        with pytest.raises(SimulationError):
            Trace(np.array([0.0, 1.0]), np.zeros((2, 2)), np.zeros((3, 1)))

    def test_non_monotone_times(self):
        with pytest.raises(SimulationError):
            Trace(np.array([0.0, 2.0, 1.0]), np.zeros((3, 1)))

    def test_2d_times_rejected(self):
        with pytest.raises(SimulationError):
            Trace(np.zeros((2, 2)), np.zeros((2, 2)))


class TestAccessors:
    def test_initial_final(self, trace):
        assert np.allclose(trace.initial_state, [0.0, 0.0])
        assert np.allclose(trace.final_state, [1.0, 1.0])

    def test_state_at_interpolates(self, trace):
        mid = trace.state_at(0.55)
        assert mid[0] == pytest.approx(0.55)
        assert mid[1] == pytest.approx(0.55**2, abs=0.01)

    def test_state_at_clamps(self, trace):
        assert np.allclose(trace.state_at(-5.0), trace.initial_state)
        assert np.allclose(trace.state_at(5.0), trace.final_state)

    def test_consecutive_pairs(self, trace):
        pairs = list(trace.consecutive_pairs())
        assert len(pairs) == 10
        x0, x1, dt = pairs[0]
        assert dt == pytest.approx(0.1)
        assert np.allclose(x0, trace.states[0])
        assert np.allclose(x1, trace.states[1])

    def test_max_norm(self, trace):
        assert trace.max_norm() == pytest.approx(np.sqrt(2.0))


class TestOperations:
    def test_subsample(self, trace):
        sub = trace.subsample(3)
        assert len(sub) <= len(trace)
        assert np.allclose(sub.final_state, trace.final_state)
        assert np.all(np.diff(sub.times) > 0)

    def test_subsample_stride_one(self, trace):
        assert len(trace.subsample(1)) == len(trace)

    def test_subsample_invalid(self, trace):
        with pytest.raises(SimulationError):
            trace.subsample(0)

    def test_concatenate_states(self, trace):
        stacked = Trace.concatenate_states([trace, trace])
        assert stacked.shape == (22, 2)

    def test_concatenate_empty(self):
        with pytest.raises(SimulationError):
            Trace.concatenate_states([])

    def test_truncated_flag_propagates(self):
        t = Trace(np.array([0.0, 1.0]), np.zeros((2, 1)), truncated=True)
        assert t.subsample(1).truncated
