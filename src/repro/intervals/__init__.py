"""Sound interval arithmetic: the numeric substrate of the δ-SAT solver.

Public surface:

* :class:`Interval` — outward-rounded scalar interval.
* :class:`Box` — interval vector (ICP search region).
* ``i*`` free functions — dual-semantics (float or interval) elementary
  functions, plus vectorized interval linear algebra for the NN hot path.
"""

from .box import Box
from .functions import (
    iabs,
    iatan,
    icos,
    iexp,
    ilog,
    imax,
    imin,
    interval_affine,
    interval_matvec,
    interval_relu_bounds,
    interval_sigmoid_bounds,
    interval_tanh_bounds,
    ipow,
    isigmoid,
    isin,
    isqrt,
    itan,
    itanh,
)
from .interval import Interval
from .rounding import next_down, next_up, widen

__all__ = [
    "Box",
    "Interval",
    "iabs",
    "iatan",
    "icos",
    "iexp",
    "ilog",
    "imax",
    "imin",
    "interval_affine",
    "interval_matvec",
    "interval_relu_bounds",
    "interval_sigmoid_bounds",
    "interval_tanh_bounds",
    "ipow",
    "isigmoid",
    "isin",
    "isqrt",
    "itan",
    "itanh",
    "next_down",
    "next_up",
    "widen",
]
