"""Self-healing primitives: backoff schedules, circuit breakers, incidents.

Three small pieces shared by every supervised layer of the stack:

* :class:`Backoff` — a capped exponential retry schedule with
  deterministic decorrelated jitter (seeded per instance, so tests and
  chaos runs are replayable).
* :class:`CircuitBreaker` — the classic CLOSED → OPEN → HALF_OPEN state
  machine used to stop re-racing a flapping external solver on every
  query.  Opens after ``threshold`` consecutive failures, waits out a
  ``cooldown``, then admits exactly one half-open probe; a probe success
  closes it, a probe failure re-opens it with the cooldown re-armed.
* The **incident log** — a bounded, process-global record of every
  recovery event (worker respawn, breaker trip, engine degradation,
  job retry).  Recovery accounting lives *here* and never inside run
  artifacts, which is what keeps degraded artifacts byte-identical to
  the fallback engine's own output.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Backoff",
    "CircuitBreaker",
    "breaker_for",
    "clear_incidents",
    "incidents",
    "record_incident",
    "reset_breakers",
]


@dataclass
class Backoff:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` is pure given the instance's seed: attempt ``n``
    waits ``min(cap, base * 2**n)`` scaled by a jitter factor drawn from
    ``[0.5, 1.0]``.  ``sleep(attempt)`` is the convenience that actually
    waits.
    """

    base: float = 0.05
    cap: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * (2.0 ** max(0, attempt)))
        return raw * (0.5 + 0.5 * self._rng.random())

    def sleep(self, attempt: int) -> float:
        d = self.delay(attempt)
        if d > 0:
            time.sleep(d)
        return d


class CircuitBreaker:
    """Per-dependency circuit breaker (thread-safe).

    States:

    * **CLOSED** — calls flow; ``threshold`` consecutive failures trip
      the breaker.
    * **OPEN** — calls are refused (``allow()`` is ``False``) until
      ``cooldown`` seconds pass.
    * **HALF_OPEN** — after the cooldown, exactly one caller is admitted
      as a probe; its outcome closes or re-opens the breaker.

    Timeouts are deliberately *not* failures here: a slow-but-correct
    solver losing the race is healthy behaviour, while spawn errors and
    unparseable transcripts mean the dependency itself is broken.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        self._probe_claimed_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed; claims the half-open probe slot.

        A claimed probe that never reports an outcome (e.g. its race
        was cancelled and the solver timed out, which is breaker-
        neutral) expires after another cooldown so the breaker can
        never wedge itself shut.
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                now = self._clock()
                if self._probing and (
                    now - self._probe_claimed_at < self.cooldown
                ):
                    return False
                self._probing = True
                self._probe_claimed_at = now
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                record_incident(
                    "breaker.close", f"circuit for {self.name} closed after probe"
                )

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            was = self._effective_state()
            if was == self.HALF_OPEN or self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._failures = 0
                record_incident(
                    "breaker.open",
                    f"circuit for {self.name} opened "
                    f"({'probe failed' if was == self.HALF_OPEN else 'threshold hit'})",
                )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self._effective_state(),
                "failures": self._failures,
            }


_BREAKERS: "dict[str, CircuitBreaker]" = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(name: str, threshold: int = 3, cooldown: float = 30.0) -> CircuitBreaker:
    """The process-wide breaker guarding dependency ``name``."""
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(name)
        if breaker is None:
            breaker = CircuitBreaker(name, threshold=threshold, cooldown=cooldown)
            _BREAKERS[name] = breaker
        return breaker


def reset_breakers() -> None:
    """Forget all breakers (tests / chaos isolation)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


@dataclass
class _IncidentLog:
    entries: "deque[dict]" = field(default_factory=lambda: deque(maxlen=512))
    lock: threading.Lock = field(default_factory=threading.Lock)


_INCIDENTS = _IncidentLog()


def record_incident(kind: str, detail: str = "") -> None:
    """Append a recovery event to the bounded process-global log."""
    with _INCIDENTS.lock:
        _INCIDENTS.entries.append(
            {"kind": kind, "detail": detail, "at": time.time()}
        )


def incidents(kind: "str | None" = None) -> "list[dict]":
    """Recorded incidents, oldest first, optionally filtered by kind."""
    with _INCIDENTS.lock:
        entries = list(_INCIDENTS.entries)
    if kind is not None:
        entries = [e for e in entries if e["kind"] == kind]
    return entries


def clear_incidents() -> None:
    with _INCIDENTS.lock:
        _INCIDENTS.entries.clear()
