"""The ``sharded-icp`` engine's checker: batched ICP on N forked cores.

:class:`ShardedSmtBackend` is :class:`~repro.engine.batched.BatchedSmtBackend`
with one substitution — the solver factory returns a
:class:`~repro.smt.ShardedIcpSolver`, which fans the per-round row work
(forward constraint evaluation, HC4 contraction) out across forked
worker processes over ``multiprocessing.shared_memory`` planes while
keeping the serial search loop verbatim.  Verdicts, witnesses, LP-loop
behavior, and artifact JSON are therefore **bit-identical** to
``batched-icp`` at every shard count — the CI ``shard-parity`` job pins
this on all builtin scenarios at 1, 2, and 4 shards.

The shard count is an execution-layout knob, not part of the problem:
``IcpConfig.shards`` (set via ``repro verify --shards`` or
:func:`repro.api.run`'s ``icp_overrides``), else the ``REPRO_SHARDS``
environment variable, else 1.  At one shard no workers are forked and
the computation *is* ``batched-icp``, byte for byte — which is why the
``portfolio`` engine's internal ICP lane routes through this backend
unconditionally.
"""

from __future__ import annotations

from typing import Callable

from ..smt import IcpConfig, ShardedIcpSolver, resolve_shards
from ..smt.icp_sharded import fork_available
from .batched import BatchedSmtBackend

__all__ = ["ShardedSmtBackend"]


class ShardedSmtBackend(BatchedSmtBackend):
    """δ-SAT checking on the frontier-sharded multi-process ICP solver."""

    name = "sharded-icp"

    def __init__(self, shards: int | None = None):
        #: explicit shard count; ``None`` defers to ``IcpConfig.shards``
        #: then ``REPRO_SHARDS`` at check time.
        self.shards = None if shards is None else max(1, int(shards))

    def resolved_shards(self, config: "IcpConfig | None" = None) -> int:
        """Effective worker count for a check with this ``config``."""
        if self.shards is not None:
            return self.shards
        return resolve_shards(config)

    def _make_solver(
        self,
        config: IcpConfig | None,
        should_stop: "Callable[[], bool] | None",
    ) -> ShardedIcpSolver:
        return ShardedIcpSolver(
            config, should_stop=should_stop, shards=self.shards
        )

    def availability(self) -> tuple[bool, str]:
        """Always available; the reason string reports the parallelism level.

        Mirrors the portfolio's lineup reporting: ``repro engines`` shows
        at a glance whether a run would actually fork workers, and how to
        turn them on when it would not.
        """
        if not fork_available():  # pragma: no cover - POSIX containers
            return True, (
                "1 shard (no fork on this platform); "
                "runs identically to batched-icp"
            )
        n = self.resolved_shards()
        if n <= 1:
            return True, (
                "1 shard (REPRO_SHARDS unset); "
                "set --shards/REPRO_SHARDS to parallelize"
            )
        return True, f"{n} shards over fork+shared-memory workers"

    def describe_extra(self) -> dict:
        """Extra keys merged into :meth:`repro.engine.Engine.describe`."""
        return {"shards": self.resolved_shards()}
