"""End-to-end acceptance: HTTP round-trips, stress, restart recovery.

Covers the service acceptance criteria: the same family grid submitted
twice to a running server (first fans out to workers, second resolves
100% from cache with artifact JSON byte-identical to a direct
``api.run``), a 50-job concurrent-submission stress with no lost or
duplicated jobs, and journal replay to the same final states after a
simulated server restart.
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.api.family import get_family
from repro.api.runner import derive_scenario_seed
from repro.service import EventBus, JobState, Scheduler, ServiceClient, ServiceError, ServiceServer
from repro.store import ArtifactStore

GRID = {"damping": "0.4:0.8:3"}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def service(store):
    """A running HTTP server (thread executor, events, journal)."""
    scheduler = Scheduler(
        store, pool=False, workers=2, events=EventBus(), journal=True
    )
    server = ServiceServer(scheduler, port=0)
    server.run_in_thread()
    client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
    yield client, scheduler, store
    server.stop_thread()
    scheduler.shutdown(wait=True)


class TestHttpRoundTrip:
    def test_health(self, service):
        client, _, _ = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["executor"] == "threads"

    def test_submit_twice_second_is_all_cache(self, service):
        client, _, store = service

        cold = client.submit("linear", grid=GRID)
        assert cold["total_points"] == 3
        assert cold["dispatched"] == 3
        cold = client.wait(cold["id"], timeout=120)
        assert cold["state"] == "DONE"
        assert cold["verified_points"] == 3

        warm = client.submit("linear", grid=GRID)
        # Resolved during submit: the response is already terminal.
        assert warm["state"] == "DONE"
        assert warm["cached_points"] == 3
        assert warm["dispatched"] == 0

        # Byte-identical to a direct api.run of the same points.
        result = client.result(warm["id"])
        family = get_family("linear")
        for run in result["runs"]:
            scenario = family.instantiate(**run["params"])
            config = dataclasses.replace(
                scenario.config,
                seed=derive_scenario_seed(0, scenario.name),
            )
            direct = api.run(scenario, config=config, cache=store)
            assert direct.cached
            assert json.loads(direct.to_json()) == run["artifact"]

    def test_event_stream_ends_with_terminal_job_event(self, service):
        client, _, _ = service
        job = client.submit("linear", grid={"damping": [0.5]})
        events = list(client.stream(job["id"]))
        assert events, "stream yielded nothing"
        assert events[-1]["type"] == "job"
        assert events[-1]["state"] in {"DONE", "FAILED", "CANCELLED"}
        types = {e["type"] for e in events}
        assert "point" in types

    def test_stream_of_finished_job_replays_terminal_event(self, service):
        client, _, _ = service
        job = client.submit("linear", grid={"damping": [0.5]})
        client.wait(job["id"], timeout=120)
        events = list(client.stream(job["id"]))
        assert events[-1]["type"] == "job"
        assert events[-1]["state"] == "DONE"

    def test_cancel_over_http(self, service):
        client, scheduler, _ = service
        job = client.submit("linear", grid=GRID)
        status = client.cancel(job["id"])
        assert status["state"] in {"CANCELLED", "DONE"}
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == status["state"]

    def test_unknown_job_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-nope")
        assert excinfo.value.status == 404

    def test_bad_submit_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("no-such-target")
        assert excinfo.value.status == 400

    def test_jobs_listing(self, service):
        client, _, _ = service
        submitted = client.submit("linear", grid={"damping": [0.5]})
        client.wait(submitted["id"], timeout=120)
        listed = client.jobs()
        assert submitted["id"] in {job["id"] for job in listed}


class TestStress:
    def test_50_concurrent_jobs_none_lost_none_duplicated(self, service):
        """The acceptance stress: 50 jobs over the same 3-point grid
        submitted from 10 threads; every job reaches DONE, ids are
        unique, and only 3 distinct points ever run."""
        client, scheduler, store = service

        def submit(i):
            return client.submit("linear", grid=GRID, priority=i % 3)

        with ThreadPoolExecutor(max_workers=10) as pool:
            statuses = list(pool.map(submit, range(50)))

        ids = [status["id"] for status in statuses]
        assert len(set(ids)) == 50, "duplicated job ids"

        finals = [client.wait(job_id, timeout=180) for job_id in ids]
        assert all(f["state"] == "DONE" for f in finals)
        assert all(f["verified_points"] == 3 for f in finals)

        listed = {job["id"] for job in client.jobs()}
        assert set(ids) <= listed, "lost jobs"

        # Coalescing + caching: 3 distinct keys → 3 artifacts, not 150.
        assert store.stats().artifacts == 3
        total_executions = sum(f["dispatched"] for f in finals)
        assert total_executions <= 3


class TestRestartRecovery:
    def test_journal_replays_to_same_final_states(self, store):
        """Run a mixed bag of jobs, kill the server, bring up a fresh
        scheduler on the same store: every terminal job replays to the
        same final state and the interrupted one converges to DONE."""
        scheduler = Scheduler(store, pool=False, workers=2, journal=True)
        server = ServiceServer(scheduler, port=0)
        server.run_in_thread()
        client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=30.0)

        done = client.wait(client.submit("linear", grid=GRID)["id"], timeout=120)
        cancelled = client.submit("linear", grid={"damping": [0.9]})
        cancelled = client.cancel(cancelled["id"])
        expected = {
            done["id"]: "DONE",
            cancelled["id"]: cancelled["state"],
        }

        # Simulated crash: no graceful drain of queued work.
        server.stop_thread()
        scheduler.shutdown(wait=True)

        revived = Scheduler(store, pool=False, workers=2, journal=True)
        try:
            requeued = revived.recover()
            # Terminal jobs are not re-queued.
            assert {j.id for j in requeued}.isdisjoint(expected)
            for job_id, state in expected.items():
                assert revived.job(job_id).state.value == state
            # The DONE job's artifacts hydrate from the store by key.
            artifacts = revived.job_result(done["id"])
            assert all(a is not None for a in artifacts)
            assert all(a.verified for a in artifacts)
        finally:
            revived.shutdown(wait=True)

    def test_unfinished_job_requeued_and_finishes(self, store):
        scheduler = Scheduler(store, pool=False, workers=1, journal=True)
        job = scheduler.submit({"target": "linear", "grid": GRID})
        # Crash before completion (don't wait for in-flight work).
        scheduler.shutdown(wait=False)

        revived = Scheduler(store, pool=False, workers=2, journal=True)
        try:
            requeued = revived.recover()
            assert [j.id for j in requeued] == [job.id]
            import time

            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if revived.job(job.id).state.terminal:
                    break
                time.sleep(0.05)
            final = revived.job(job.id)
            assert final.state is JobState.DONE
            assert all(a is not None for a in final.artifacts)
        finally:
            revived.shutdown(wait=True)
