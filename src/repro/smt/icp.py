"""Branch-and-prune δ-satisfiability solver (the dReal replacement).

Decides existential queries ``∃x ∈ box : c1(x) ∧ ... ∧ ck(x)`` over
nonlinear real constraints:

* **UNSAT** — every leaf box of the search tree was pruned by a sound
  interval bound: a proof that no solution exists.
* **DELTA_SAT** — some box either certainly satisfies every constraint,
  or shrank below the width tolerance δ without being refuted; its
  midpoint is the returned witness (dReal's "model").

The frontier is processed in batches through the compiled expression
tapes (:class:`repro.expr.CompiledExpression`), so pruning hundreds of
boxes costs one vectorized pass per constraint.  An optional HC4
contraction pass (:mod:`repro.smt.contractor`) narrows surviving boxes
before they are bisected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError
from ..intervals import Box
from .constraint import Constraint, Status
from .contractor import contract_fixpoint
from .result import SmtResult, SolverStats, Verdict

__all__ = ["IcpConfig", "IcpSolver", "solve_conjunction"]


@dataclass
class IcpConfig:
    """Tuning knobs for the branch-and-prune search.

    Attributes
    ----------
    delta:
        Width tolerance: an un-refuted box whose widest side is below
        ``delta`` yields a DELTA_SAT verdict (dReal's precision).
    batch_size:
        Number of frontier boxes evaluated per vectorized pass.
    max_boxes:
        Budget on processed boxes; exceeding it returns UNKNOWN.
    time_limit:
        Wall-clock budget in seconds (None = unlimited).
    use_contractor:
        Run HC4 fixpoint contraction on boxes that survive pruning.
    contractor_node_limit:
        Skip contraction when a constraint tape exceeds this many
        instructions (scalar HC4 on huge NN expressions costs more than
        the bisections it saves; the batched forward pass still prunes).
    contractor_rounds:
        Fixpoint rounds per contraction call.
    solver_timeout:
        Hard wall-clock budget in seconds for *external* SMT solver
        processes raced by the ``portfolio`` engine (see
        :mod:`repro.solvers`).  ``None`` falls back to ``time_limit``
        when set, else 30 seconds.  Ignored by the in-house ICP solvers.
    shards:
        Worker-process count for the frontier-sharded solver
        (:class:`~repro.smt.icp_sharded.ShardedIcpSolver`).  ``None``
        defers to the ``REPRO_SHARDS`` environment variable (unset: 1,
        i.e. the serial batched path).  A pure execution-layout knob:
        the parity gate pins results bit-identical for every value, so
        it is excluded from run fingerprints and artifact JSON (see
        :func:`repro.api.scenario.synthesis_config_to_dict`).
    """

    delta: float = 1e-3
    batch_size: int = 256
    max_boxes: int = 2_000_000
    time_limit: float | None = None
    use_contractor: bool = True
    contractor_node_limit: int = 512
    contractor_rounds: int = 2
    solver_timeout: float | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.delta <= 0.0:
            raise SolverError(f"delta must be positive, got {self.delta}")
        if self.batch_size < 1:
            raise SolverError("batch_size must be >= 1")
        if self.max_boxes < 1:
            raise SolverError("max_boxes must be >= 1")
        if self.solver_timeout is not None and self.solver_timeout <= 0.0:
            raise SolverError("solver_timeout must be positive")
        if self.shards is not None and self.shards < 1:
            raise SolverError("shards must be >= 1")


class IcpSolver:
    """Reusable branch-and-prune solver bound to one configuration."""

    def __init__(self, config: IcpConfig | None = None):
        self.config = config or IcpConfig()

    def solve(
        self,
        constraints: Sequence[Constraint],
        region: Box,
        variable_names: Sequence[str],
    ) -> SmtResult:
        """Decide ``∃x ∈ region: ∧ constraints`` to precision δ."""
        config = self.config
        names = list(variable_names)
        if region.dimension != len(names):
            raise SolverError(
                f"region dimension {region.dimension} != {len(names)} variables"
            )
        if not constraints:
            # Trivially satisfiable anywhere in the region.
            mid = region.midpoint()
            return SmtResult(
                Verdict.DELTA_SAT,
                config.delta,
                witness=mid,
                witness_box=region,
                witness_validated=True,
            )
        if not region.is_finite():
            raise SolverError("ICP requires a bounded search region")

        tapes = [c.compiled(names) for c in constraints]
        contract_ok = config.use_contractor and all(
            len(t) <= config.contractor_node_limit for t in tapes
        )

        stats = SolverStats()
        start = time.perf_counter()
        deadline = None if config.time_limit is None else start + config.time_limit

        # Frontier of (n, 2) bound arrays, LIFO for depth-first descent.
        frontier: list[np.ndarray] = [region.to_array()]
        depths: list[int] = [0]

        while frontier:
            if deadline is not None and time.perf_counter() > deadline:
                stats.elapsed_seconds = time.perf_counter() - start
                return SmtResult(Verdict.UNKNOWN, config.delta, stats=stats)
            if stats.boxes_processed >= config.max_boxes:
                stats.elapsed_seconds = time.perf_counter() - start
                return SmtResult(Verdict.UNKNOWN, config.delta, stats=stats)

            take = min(config.batch_size, len(frontier))
            batch = frontier[-take:]
            batch_depths = depths[-take:]
            del frontier[-take:]
            del depths[-take:]

            arr = np.stack(batch)  # (m, n, 2)
            lows = arr[:, :, 0]
            highs = arr[:, :, 1]
            m = arr.shape[0]
            stats.boxes_processed += m
            stats.max_depth = max(stats.max_depth, max(batch_depths))

            alive = np.ones(m, dtype=bool)
            all_true = np.ones(m, dtype=bool)
            for tape, constraint in zip(tapes, constraints):
                lo, hi = tape.eval_boxes(lows[alive], highs[alive])
                status = constraint.status_from_bounds(lo, hi)
                sub_false = status == int(Status.CERTAIN_FALSE)
                sub_true = status == int(Status.CERTAIN_TRUE)
                # Scatter back into full-batch masks.
                idx = np.flatnonzero(alive)
                all_true[idx[~sub_true]] = False
                alive[idx[sub_false]] = False
                if not alive.any():
                    break

            stats.boxes_pruned += int(m - alive.sum())

            # A box where every constraint certainly holds: any point works.
            certain = alive & all_true
            if certain.any():
                i = int(np.flatnonzero(certain)[0])
                stats.boxes_certain += 1
                stats.elapsed_seconds = time.perf_counter() - start
                box = Box.from_array(arr[i])
                return SmtResult(
                    Verdict.DELTA_SAT,
                    config.delta,
                    witness=box.midpoint(),
                    witness_box=box,
                    witness_validated=True,
                    stats=stats,
                )

            for i in np.flatnonzero(alive):
                box_arr = arr[i]
                depth = batch_depths[i]
                widths = box_arr[:, 1] - box_arr[:, 0]
                if float(widths.max()) <= config.delta:
                    stats.elapsed_seconds = time.perf_counter() - start
                    box = Box.from_array(box_arr)
                    witness = box.midpoint()
                    validated = all(
                        c.satisfied_at(witness, names, slack=config.delta)
                        for c in constraints
                    )
                    return SmtResult(
                        Verdict.DELTA_SAT,
                        config.delta,
                        witness=witness,
                        witness_box=box,
                        witness_validated=validated,
                        stats=stats,
                    )
                box = Box.from_array(box_arr)
                if contract_ok:
                    contracted = contract_fixpoint(
                        constraints,
                        box,
                        names,
                        max_rounds=config.contractor_rounds,
                    )
                    stats.contractions += 1
                    if contracted is None:
                        stats.boxes_pruned += 1
                        continue
                    box = contracted
                    if box.max_width() <= config.delta:
                        stats.elapsed_seconds = time.perf_counter() - start
                        witness = box.midpoint()
                        validated = all(
                            c.satisfied_at(witness, names, slack=config.delta)
                            for c in constraints
                        )
                        return SmtResult(
                            Verdict.DELTA_SAT,
                            config.delta,
                            witness=witness,
                            witness_box=box,
                            witness_validated=validated,
                            stats=stats,
                        )
                left, right = box.bisect()
                frontier.append(left.to_array())
                frontier.append(right.to_array())
                depths.extend((depth + 1, depth + 1))
                stats.boxes_split += 1

        stats.elapsed_seconds = time.perf_counter() - start
        return SmtResult(Verdict.UNSAT, self.config.delta, stats=stats)


def solve_conjunction(
    constraints: Sequence[Constraint],
    region: Box,
    variable_names: Sequence[str],
    config: IcpConfig | None = None,
) -> SmtResult:
    """One-shot convenience wrapper around :class:`IcpSolver`."""
    return IcpSolver(config).solve(constraints, region, variable_names)
