"""Twin generation: mutation structure, cache identity, conformance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.api import get_family
from repro.corpus import (
    FLIPPING_MUTATIONS,
    MUTATIONS,
    PRESERVING_MUTATIONS,
    conforms,
    generate_twins,
    mutate,
)
from repro.corpus.twins import (
    LOOSEN_FACTOR,
    SWAP_FILL,
    TIGHTEN_FACTOR,
)
from repro.errors import ReproError
from repro.store import run_key


@pytest.fixture(scope="module")
def base():
    return get_family("linear").instantiate()


def test_mutation_registry_partitions():
    assert MUTATIONS == PRESERVING_MUTATIONS + FLIPPING_MUTATIONS
    assert not set(PRESERVING_MUTATIONS) & set(FLIPPING_MUTATIONS)
    assert len(MUTATIONS) == 5


def test_unknown_mutation_names_the_registry(base):
    with pytest.raises(ReproError, match="unknown mutation 'bogus'"):
        mutate(base, "bogus")


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_mutate_renames_and_strips_family_identity(base, mutation):
    twin = mutate(base, mutation)
    assert twin.name == f"{base.name}::twin[{mutation}]"
    assert twin.family is None
    assert twin.family_params == ()


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_every_twin_passes_the_geometry_gate(base, mutation):
    """Mutated sets must still satisfy X0 ⊆ safe (problem() constructs)."""
    problem = mutate(base, mutation).problem()
    assert problem.initial_set.dimension == base.initial_set.dimension


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_twin_store_keys_never_alias_the_base(base, mutation):
    twin = mutate(base, mutation)
    assert run_key(twin, twin.config, "batched-icp") != run_key(
        base, base.config, "batched-icp"
    )


def test_twin_store_keys_pairwise_distinct(base):
    keys = {
        run_key(t.scenario, t.scenario.config, "batched-icp")
        for t in generate_twins(base)
    }
    assert len(keys) == len(MUTATIONS)


def test_tighten_initial_shrinks_about_center(base):
    twin = mutate(base, "tighten-initial")
    lower, upper = np.asarray(base.initial_set.lower), np.asarray(
        base.initial_set.upper
    )
    center, half = (lower + upper) / 2, (upper - lower) / 2
    np.testing.assert_allclose(
        np.asarray(twin.initial_set.lower), center - TIGHTEN_FACTOR * half
    )
    np.testing.assert_allclose(
        np.asarray(twin.initial_set.upper), center + TIGHTEN_FACTOR * half
    )


def test_loosen_unsafe_inflates_complement_but_pins_domain(base):
    twin = mutate(base, "loosen-unsafe")
    old_safe = base.unsafe_set.safe_rectangle
    new_safe = twin.unsafe_set.safe_rectangle
    np.testing.assert_allclose(
        np.asarray(new_safe.upper),
        LOOSEN_FACTOR * np.asarray(old_safe.upper),
    )
    assert twin.domain is not None
    np.testing.assert_allclose(
        np.asarray(twin.domain.lower), np.asarray(old_safe.lower)
    )
    np.testing.assert_allclose(
        np.asarray(twin.domain.upper), np.asarray(old_safe.upper)
    )


def test_swap_sets_fills_the_safe_box(base):
    twin = mutate(base, "swap-sets")
    safe = base.unsafe_set.safe_rectangle
    np.testing.assert_allclose(
        np.asarray(twin.initial_set.upper),
        SWAP_FILL * np.asarray(safe.upper),
    )


@pytest.mark.parametrize(
    "mutation, factor", [("scale-dynamics", 2.0), ("reverse-field", -1.0)]
)
def test_dynamics_mutations_scale_the_field(base, mutation, factor):
    twin = mutate(base, mutation)
    system = twin.system_factory()
    reference = base.system_factory()
    points = np.array([[0.3, -0.2], [1.1, 0.7], [-0.5, 0.25]])
    for x in points:
        np.testing.assert_allclose(system.f(x), factor * reference.f(x))
    np.testing.assert_allclose(
        system.f_vectorized(points), factor * reference.f_vectorized(points)
    )


def test_generate_twins_expected_verdicts(base):
    twins = generate_twins(base)
    assert [t.mutation for t in twins] == list(MUTATIONS)
    for twin in twins:
        assert twin.base == base.name
        if twin.mutation in PRESERVING_MUTATIONS:
            assert twin.expected == "verified"
            assert twin.preserving
        else:
            assert twin.expected == "not-verified"
            assert not twin.preserving


@pytest.mark.parametrize(
    "expected, status, verdict",
    [
        ("verified", "verified", True),
        ("verified", "inconclusive", None),
        ("verified", "no-candidate", False),
        ("verified", "no-level-set", False),
        ("not-verified", "verified", False),
        ("not-verified", "no-candidate", True),
        ("not-verified", "inconclusive", True),
        ("not-verified", "error", True),
    ],
)
def test_conforms_semantics(base, expected, status, verdict):
    mutation = (
        PRESERVING_MUTATIONS[0]
        if expected == "verified"
        else FLIPPING_MUTATIONS[0]
    )
    twin = next(
        t for t in generate_twins(base, (mutation,)) if t.expected == expected
    )
    assert conforms(twin, status) is verdict


def test_linear_twins_conform_end_to_end(base):
    """All five mutations round-trip through the batched engine."""
    assert api.run(base, engine="batched-icp", cache=False).status == "verified"
    for twin in generate_twins(base):
        artifact = api.run(twin.scenario, engine="batched-icp", cache=False)
        assert conforms(twin, artifact.status) is not False, (
            f"{twin.mutation}: expected {twin.expected}, "
            f"got {artifact.status}"
        )
