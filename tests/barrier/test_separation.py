"""Tests for the LP separation-constraint extension.

These constraints steer the LP toward candidates whose level sets can
separate X0 from U — the extension documented in DESIGN.md section 8.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    LpConfig,
    QuadraticTemplate,
    Rectangle,
    fit_generator,
    level_bounds,
)
from repro.dynamics import error_dynamics_system
from repro.errors import InfeasibleLPError
from repro.experiments import paper_initial_set, paper_unsafe_set
from repro.learning import proportional_controller_network


@pytest.fixture
def setup(rng):
    net = proportional_controller_network(6)
    system = error_dynamics_system(net)
    points = rng.uniform([-4.5, -1.3], [4.5, 1.3], size=(400, 2))
    x0 = paper_initial_set()
    unsafe = paper_unsafe_set()
    safe = unsafe.safe_rectangle
    # Dense boundary samples of the safe rectangle's edges.
    edges = []
    for axis in range(2):
        for bound in (safe.lower[axis], safe.upper[axis]):
            other = 1 - axis
            line = np.linspace(safe.lower[other], safe.upper[other], 25)
            pts = np.zeros((25, 2))
            pts[:, axis] = bound
            pts[:, other] = line
            edges.append(pts)
    boundary = np.vstack(edges)
    return system, points, x0, unsafe, boundary


class TestSeparationConstraints:
    def test_separated_candidate_has_level_gap(self, setup):
        system, points, x0, unsafe, boundary = setup
        tmpl = QuadraticTemplate(2)
        candidate = fit_generator(
            tmpl, points, system, separation=(x0.vertices(), boundary)
        )
        lo, hi = level_bounds(
            tmpl, candidate.coefficients, x0, unsafe.halfspaces()
        )
        assert hi > lo  # a separating level exists analytically

    def test_constraint_actually_binds(self, setup):
        """W at every X0 vertex is strictly below W at every boundary
        sample for the separated candidate."""
        system, points, x0, unsafe, boundary = setup
        tmpl = QuadraticTemplate(2)
        candidate = fit_generator(
            tmpl, points, system, separation=(x0.vertices(), boundary)
        )
        w_vertices = candidate.w_values(x0.vertices())
        w_boundary = candidate.w_values(boundary)
        assert w_vertices.max() < w_boundary.min()

    def test_margin_not_destroyed(self, setup):
        """Adding separation keeps a healthy decrease margin."""
        system, points, x0, unsafe, boundary = setup
        tmpl = QuadraticTemplate(2)
        plain = fit_generator(tmpl, points, system)
        separated = fit_generator(
            tmpl, points, system, separation=(x0.vertices(), boundary)
        )
        assert separated.margin > 0.0
        assert separated.margin >= 0.1 * plain.margin

    def test_impossible_separation_infeasible(self, setup, rng):
        """Inner points placed ON the boundary make separation + margin
        impossible; the LP must report infeasibility cleanly."""
        system, points, x0, unsafe, boundary = setup
        tmpl = QuadraticTemplate(2)
        with pytest.raises(InfeasibleLPError):
            fit_generator(
                tmpl,
                points,
                system,
                LpConfig(min_margin=1e-6),
                separation=(boundary, boundary),
            )
