"""Engine degradation ladder: step down instead of failing the run.

The process-parallel engines trade isolation for speed — ``sharded-icp``
forks workers over shared memory, ``portfolio`` races external solver
subprocesses.  When that machinery breaks *unrecoverably* (the sharded
supervisor exhausts its respawn budget, the process pool is gone), the
run itself is still perfectly solvable: every rung of the ladder
computes the same verdicts, just slower.  :func:`run_with_degradation`
walks

    ``sharded-icp → batched-icp → native``

(``portfolio`` also steps to ``batched-icp``, its documented no-binaries
degrade target) re-running on the next rung.  The determinism contract
is deliberately blunt: a degraded run **re-executes from scratch on the
fallback engine**, so its artifact is byte-identical to having requested
that engine directly — no partial results are stitched together, and
the artifact never records that degradation happened.  Degradation is
operational metadata and lives in the incident log
(:func:`~repro.resilience.incidents` kind ``engine.degrade``) instead.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from typing import Callable, TypeVar

from ..errors import WorkerDied
from .supervisor import record_incident

__all__ = ["DEGRADE_TO", "degradation_path", "fallback_engine", "run_with_degradation"]

T = TypeVar("T")

#: next rung down for each engine that can lose workers
DEGRADE_TO = {
    "sharded-icp": "batched-icp",
    "portfolio": "batched-icp",
    "parallel-smt": "batched-icp",
    "batched-icp": "native",
}

#: error types that mean "the execution machinery died", not "the
#: problem is unsolvable" — only these trigger a step down
_DEGRADABLE = (WorkerDied, BrokenProcessPool)


def fallback_engine(name: str) -> "str | None":
    """The next rung down from ``name``, or ``None`` at the bottom."""
    return DEGRADE_TO.get(name)


def degradation_path(name: str) -> "tuple[str, ...]":
    """``name`` followed by every rung below it, in order."""
    path = [name]
    while True:
        nxt = DEGRADE_TO.get(path[-1])
        if nxt is None or nxt in path:
            return tuple(path)
        path.append(nxt)


def run_with_degradation(
    fn: "Callable[[str], T]",
    engine: str,
    detail: str = "",
) -> T:
    """Call ``fn(engine)``, stepping down the ladder on machinery loss.

    ``fn`` must be restartable from scratch with a different engine name
    (the runner's :func:`~repro.api.runner.run` is).  Each step down is
    recorded as an ``engine.degrade`` incident; errors that are not
    machinery loss — and machinery loss on the bottom rung — propagate
    unchanged.
    """
    current = engine
    while True:
        try:
            return fn(current)
        except _DEGRADABLE as exc:
            nxt = fallback_engine(current)
            if nxt is None:
                raise
            record_incident(
                "engine.degrade",
                f"{current} -> {nxt}: {type(exc).__name__}: {exc}"
                + (f" ({detail})" if detail else ""),
            )
            current = nxt
