"""Fault injection and self-healing for the execution stack.

Three layers, each documented in its module:

* :mod:`repro.resilience.faults` — named fault-injection seams wired
  into the hot paths, driven by deterministic seeded :class:`FaultPlan`
  schedules.  Inactive (one ``None`` check) unless a plan is installed.
* :mod:`repro.resilience.supervisor` — :class:`Backoff`,
  :class:`CircuitBreaker`, and the process-global incident log that
  records every recovery event (respawns, breaker trips, degradations,
  job retries) *outside* run artifacts.
* :mod:`repro.resilience.ladder` — the engine degradation ladder
  (``sharded-icp → batched-icp → native``): unrecoverable machinery
  loss re-runs the request on the next rung, byte-identical to having
  asked for that engine directly.

The ``repro chaos`` CLI (:mod:`repro.resilience.chaos`) ties them
together: it replays the scenario corpus under seeded fault schedules
and asserts no hangs, no verdict flips, and no leaked processes or
shared-memory segments.
"""

from .chaos import (
    CHAOS_SCENARIOS,
    ChaosOutcome,
    ChaosReport,
    ChaosSolver,
    chaos,
    write_chaos_reproducer,
)
from .faults import (
    SEAM_KINDS,
    SEAMS,
    FaultAction,
    FaultPlan,
    active_plan,
    clear_plan,
    fire,
    fired_faults,
    injected,
    install_plan,
    raise_if,
)
from .ladder import (
    DEGRADE_TO,
    degradation_path,
    fallback_engine,
    run_with_degradation,
)
from .supervisor import (
    Backoff,
    CircuitBreaker,
    breaker_for,
    clear_incidents,
    incidents,
    record_incident,
    reset_breakers,
)

__all__ = [
    "Backoff",
    "CHAOS_SCENARIOS",
    "ChaosOutcome",
    "ChaosReport",
    "ChaosSolver",
    "CircuitBreaker",
    "DEGRADE_TO",
    "FaultAction",
    "FaultPlan",
    "SEAMS",
    "SEAM_KINDS",
    "active_plan",
    "breaker_for",
    "chaos",
    "clear_incidents",
    "clear_plan",
    "degradation_path",
    "fallback_engine",
    "fire",
    "fired_faults",
    "incidents",
    "injected",
    "install_plan",
    "raise_if",
    "record_incident",
    "reset_breakers",
    "run_with_degradation",
    "write_chaos_reproducer",
]
