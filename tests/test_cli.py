"""CLI tests (in-process, via main())."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.neurons == 10
        # None = flag not given (so --scenario keeps its bundled config);
        # the effective default is still delta=1e-3.
        assert args.delta is None
        assert args.scenario == ""

    def test_table1_widths(self):
        args = build_parser().parse_args(["table1", "--widths", "4", "8"])
        assert args.widths == [4, 8]

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.names == []
        assert args.workers is None
        assert args.engine is None
        assert args.seed is None

    def test_engine_flags_parse(self):
        assert (
            build_parser()
            .parse_args(["verify", "--engine", "vectorized"])
            .engine
            == "vectorized"
        )
        assert (
            build_parser()
            .parse_args(["table1", "--engine", "parallel-smt"])
            .engine
            == "parallel-smt"
        )


class TestCommands:
    def test_verify_succeeds(self, capsys):
        code = main(["verify", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: verified" in out
        assert "barrier level" in out

    def test_verify_saved_controller(self, tmp_path, capsys):
        from repro.learning import proportional_controller_network
        from repro.nn import save_network

        path = tmp_path / "net.json"
        save_network(proportional_controller_network(4), path)
        code = main(["verify", "--controller", str(path)])
        assert code == 0

    def test_falsify_unsafe(self, capsys):
        code = main(
            ["falsify", "--unsafe-controller", "--budget", "60", "--method", "random"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FALSIFIED" in out

    def test_falsify_safe_returns_nonzero(self, capsys):
        code = main(["falsify", "--budget", "20", "--method", "random", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not falsified" in out

    def test_table1_small(self, capsys):
        code = main(["table1", "--widths", "4", "--seeds", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Neurons" in out

    def test_train_small(self, capsys):
        code = main(
            ["train", "--neurons", "4", "--population", "8", "--iterations", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cost J" in out

    def test_train_save(self, tmp_path, capsys):
        path = tmp_path / "trained.json"
        code = main(
            [
                "train", "--neurons", "4", "--population", "8",
                "--iterations", "2", "--save", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_figure5(self, capsys):
        code = main(["figure5", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "barrier level" in out
        assert "@" in out


class TestProfileCommand:
    def test_profile_linear(self, capsys, tmp_path):
        out_file = tmp_path / "profile.json"
        code = main(
            ["profile", "linear", "--repeats", "1", "--json", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile 'linear'" in out
        assert "total" in out
        import json

        data = json.loads(out_file.read_text())
        assert data["scenario"] == "linear"
        assert data["kernels"] is True
        assert "stage_seconds" in data

    def test_profile_compare_includes_baseline(self, capsys):
        code = main(["profile", "linear", "--repeats", "1", "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no-kernel" in out
        assert "speedup" in out


class TestScenarioCommands:
    def test_scenarios_lists_builtins(self, capsys):
        code = main(["scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("dubins", "linear", "pendulum", "vanderpol"):
            assert name in out
        count = int(out.rsplit("\n", 2)[-2].split()[0])
        assert count >= 4

    def test_verify_scenario_linear(self, capsys, tmp_path):
        out_file = tmp_path / "artifact.json"
        code = main(["verify", "--scenario", "linear", "--json", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: verified" in out
        assert "stages:" in out
        assert "barrier level" in out
        # the written artifact JSON-round-trips
        from repro.api import RunArtifact

        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.scenario == "linear"
        assert artifact.verified

    def test_verify_scenario_keeps_bundled_config(self, capsys, tmp_path):
        """Default flags must not stomp a scenario's own config."""
        import dataclasses

        from repro.api import (
            RunArtifact,
            get_scenario,
            register_scenario,
            unregister_scenario,
        )
        from repro.barrier import SynthesisConfig

        base = get_scenario("linear")
        custom = dataclasses.replace(
            base, name="custom-config", config=SynthesisConfig(seed=9)
        )
        register_scenario(custom)
        out_file = tmp_path / "custom.json"
        explicit_file = tmp_path / "explicit.json"
        try:
            code = main(
                ["verify", "--scenario", "custom-config", "--json", str(out_file)]
            )
            code2 = main(
                ["verify", "--scenario", "custom-config", "--seed", "0",
                 "--json", str(explicit_file)]
            )
        finally:
            unregister_scenario("custom-config")
        assert code == 0 and code2 == 0
        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.config["seed"] == 9  # bundled config survived
        explicit = RunArtifact.from_json(explicit_file.read_text())
        assert explicit.config["seed"] == 0  # explicit flag wins, even at default
        capsys.readouterr()

    def test_verify_scenario_explicit_flag_overrides(self, capsys, tmp_path):
        out_file = tmp_path / "seeded.json"
        code = main(
            ["verify", "--scenario", "linear", "--seed", "3",
             "--json", str(out_file)]
        )
        assert code == 0
        from repro.api import RunArtifact

        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.config["seed"] == 3
        capsys.readouterr()

    def test_verify_unknown_scenario(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown scenario"):
            main(["verify", "--scenario", "nope"])

    def test_scenarios_json(self, capsys):
        import json

        code = main(["scenarios", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        names = {entry["name"] for entry in payload}
        assert {"dubins", "linear", "vanderpol"} <= names
        for entry in payload:
            assert set(entry) == {
                "name", "description", "dimension", "tags", "engine",
            }

    def test_batch_named_scenarios(self, capsys, tmp_path):
        out_file = tmp_path / "batch.json"
        code = main(
            ["batch", "linear", "vanderpol", "--workers", "1",
             "--json", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "linear" in out and "vanderpol" in out
        import json

        payload = json.loads(out_file.read_text())
        assert [entry["scenario"] for entry in payload] == ["linear", "vanderpol"]
        assert all(entry["verified"] for entry in payload)


class TestEngineCommands:
    def test_engines_lists_builtins(self, capsys):
        code = main(["engines"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("native", "vectorized", "parallel-smt"):
            assert name in out
        assert out.rstrip().endswith("engines registered")

    def test_engines_json(self, capsys):
        import json

        code = main(["engines", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        by_name = {entry["name"]: entry for entry in payload}
        assert {"native", "vectorized", "parallel-smt"} <= set(by_name)
        assert by_name["vectorized"]["sim"] == "VectorizedSimBackend"
        assert by_name["parallel-smt"]["smt"] == "ParallelSmtBackend"

    def test_verify_with_engine(self, capsys, tmp_path):
        from repro.api import RunArtifact

        out_file = tmp_path / "vec.json"
        code = main(
            ["verify", "--scenario", "linear", "--engine", "vectorized",
             "--json", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.engine == "vectorized"
        assert artifact.verified

    def test_verify_unknown_engine(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown engine"):
            main(["verify", "--scenario", "linear", "--engine", "nope"])

    def test_batch_with_engine_and_seed(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "batch.json"
        code = main(
            ["batch", "linear", "--workers", "1", "--engine", "parallel-smt",
             "--seed", "5", "--json", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        (entry,) = json.loads(out_file.read_text())
        assert entry["engine"] == "parallel-smt"
        from repro.api import derive_scenario_seed

        assert entry["config"]["seed"] == derive_scenario_seed(5, "linear")


class TestSolverCommands:
    def test_solvers_table(self, capsys):
        code = main(["solvers"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("z3", "dreal"):
            assert name in out
        assert "external solvers available" in out
        # The remedy for a bare container is spelled out.
        assert "REPRO_Z3" in out and "REPRO_DREAL" in out

    def test_solvers_json(self, capsys):
        import json

        code = main(["solvers", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        by_name = {entry["name"]: entry for entry in payload}
        assert {"z3", "dreal"} <= set(by_name)
        for entry in by_name.values():
            assert set(entry) >= {
                "name", "command", "available", "version", "reason"
            }
            assert isinstance(entry["available"], bool)
            if not entry["available"]:
                assert entry["reason"]

    def test_engines_json_reports_availability(self, capsys):
        import json

        code = main(["engines", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        by_name = {entry["name"]: entry for entry in json.loads(out)}
        assert "portfolio" in by_name
        for entry in by_name.values():
            assert isinstance(entry["available"], bool)
            assert isinstance(entry["reason"], str)
        assert by_name["portfolio"]["available"] is True
        assert "batched-icp" in by_name["portfolio"]["reason"]

    def test_engines_table_shows_portfolio_reason(self, capsys):
        code = main(["engines"])
        out = capsys.readouterr().out
        assert code == 0
        assert "portfolio" in out
        # The degraded-vs-racing status line is printed under the entry.
        assert "batched-icp" in out

    def test_verify_solver_timeout_threads_into_config(self, capsys, tmp_path):
        from repro.api import RunArtifact

        out_file = tmp_path / "out.json"
        code = main(
            ["verify", "--scenario", "linear", "--engine", "batched-icp",
             "--solver-timeout", "7.5", "--json", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.config["icp"]["solver_timeout"] == 7.5

    def test_verify_rejects_bad_solver_timeout(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="solver_timeout"):
            main(["verify", "--scenario", "linear", "--solver-timeout", "-1"])
