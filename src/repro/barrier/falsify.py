"""Simulation-based falsification — the baseline the paper argues past.

Testing approaches (e.g. the compositional falsification of Dreossi et
al. [3] discussed in the paper's introduction) search for an initial
state whose trajectory reaches the unsafe set.  They can *refute* safety
with a concrete counterexample but can never *prove* it — exactly the
gap the barrier-certificate method closes.

This module implements two falsifiers over the closed-loop system:

* :func:`falsify_random` — Monte Carlo over the initial set;
* :func:`falsify_cmaes` — CMA-ES minimizing the trajectory's robustness
  (signed distance to the unsafe set), the standard S-TaLiRo-style
  optimization-guided falsification.

Benchmarks pair them against the verifier: on safe systems falsifiers
exhaust their budget (no proof), on unsafe systems they find concrete
counterexample trajectories quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dynamics import ContinuousSystem
from ..errors import ReproError
from .sets import Rectangle, RectangleComplement

__all__ = [
    "FalsificationResult",
    "trajectory_robustness",
    "falsify_random",
    "falsify_cmaes",
    "witness_point",
]


def witness_point(
    model: "dict[str, float | Sequence[float]]", names: Sequence[str]
) -> np.ndarray:
    """Concrete simulation seed from a δ-SAT solver model.

    External solvers do not report exact rationals for every variable:
    dReal's models are *intervals*, sometimes open (``( lo, hi )``), and
    only degenerate when the variable is pinned.  Whether the endpoints
    are attained is irrelevant for a δ-weakened witness, so any interval
    value — tuple, list, or array of ``(lo, hi)`` — collapses to its
    midpoint, which lies strictly inside even an open interval.  Scalar
    values pass through unchanged.

    Raises :class:`~repro.errors.ReproError` when the model omits one of
    ``names`` or reports a non-finite value — callers must treat the
    verdict as UNKNOWN rather than fabricate a witness.
    """
    point = np.empty(len(names), dtype=float)
    for index, name in enumerate(names):
        if name not in model:
            raise ReproError(f"solver model has no value for variable {name!r}")
        value = model[name]
        if isinstance(value, (tuple, list, np.ndarray)):
            if len(value) != 2:
                raise ReproError(
                    f"interval value for {name!r} must be (lo, hi), got {value!r}"
                )
            lo, hi = float(value[0]), float(value[1])
            if hi < lo:
                raise ReproError(f"empty interval for {name!r}: ({lo}, {hi})")
            point[index] = 0.5 * (lo + hi)
        else:
            point[index] = float(value)
        if not np.isfinite(point[index]):
            raise ReproError(f"non-finite model value for {name!r}")
    return point


@dataclass
class FalsificationResult:
    """Outcome of a falsification campaign.

    ``falsified`` means a concrete unsafe trajectory was found; its
    initial state and the minimum robustness are reported.  ``not
    falsified`` is *not* a safety proof — only a barrier certificate is.
    """

    falsified: bool
    simulations: int
    best_initial_state: np.ndarray
    min_robustness: float

    def __str__(self) -> str:
        verdict = "FALSIFIED" if self.falsified else "not falsified"
        return (
            f"{verdict} after {self.simulations} simulations "
            f"(min robustness {self.min_robustness:.4g})"
        )


def trajectory_robustness(
    system: ContinuousSystem,
    initial_state: Sequence[float],
    safe_set: Rectangle,
    duration: float,
    dt: float,
) -> float:
    """Signed distance of a trajectory to the unsafe set.

    Positive: the trajectory stayed inside the safe rectangle, by that
    inf-norm margin.  Negative: it escaped, by that margin.  This is the
    standard space-robustness of the invariant ``always(x in safe)``.
    """
    simulator = system.simulator()
    trace = simulator.simulate(np.asarray(initial_state, float), duration, dt)
    states = trace.states
    lower_margin = states - safe_set.lower  # positive inside
    upper_margin = safe_set.upper - states
    per_sample = np.minimum(lower_margin, upper_margin).min(axis=1)
    return float(per_sample.min())


def falsify_random(
    system: ContinuousSystem,
    initial_set: Rectangle,
    unsafe_set: RectangleComplement,
    budget: int = 200,
    duration: float = 20.0,
    dt: float = 0.05,
    seed: int = 0,
) -> FalsificationResult:
    """Monte Carlo falsification: sample X0, simulate, check escape."""
    if budget < 1:
        raise ReproError("budget must be >= 1")
    rng = np.random.default_rng(seed)
    safe = unsafe_set.safe_rectangle
    best_rob = np.inf
    best_x0 = initial_set.center()
    for i in range(budget):
        x0 = rng.uniform(initial_set.lower, initial_set.upper)
        rob = trajectory_robustness(system, x0, safe, duration, dt)
        if rob < best_rob:
            best_rob = rob
            best_x0 = x0
        if rob < 0.0:
            return FalsificationResult(True, i + 1, x0, rob)
    return FalsificationResult(False, budget, best_x0, best_rob)


def falsify_cmaes(
    system: ContinuousSystem,
    initial_set: Rectangle,
    unsafe_set: RectangleComplement,
    budget: int = 300,
    duration: float = 20.0,
    dt: float = 0.05,
    seed: int = 0,
    population_size: int = 10,
) -> FalsificationResult:
    """Optimization-guided falsification: minimize robustness with CMA-ES.

    Candidates are clipped into the initial set, so the search never
    reports an escape from an inadmissible start.
    """
    # Imported here: repro.learning imports repro.barrier (for the
    # safety-aware trainer), so a module-level import would be circular.
    from ..learning.cmaes import CmaEs, CmaEsConfig

    if budget < population_size:
        raise ReproError("budget must cover at least one CMA-ES population")
    safe = unsafe_set.safe_rectangle
    center = initial_set.center()
    half_width = 0.5 * (initial_set.upper - initial_set.lower)

    evaluations = 0
    best_rob = np.inf
    best_x0 = center.copy()

    def objective(z: np.ndarray) -> float:
        nonlocal evaluations, best_rob, best_x0
        x0 = np.clip(center + z * half_width, initial_set.lower, initial_set.upper)
        rob = trajectory_robustness(system, x0, safe, duration, dt)
        evaluations += 1
        if rob < best_rob:
            best_rob = rob
            best_x0 = x0
        return rob

    es = CmaEs(
        np.zeros(initial_set.dimension),
        CmaEsConfig(
            population_size=population_size,
            max_iterations=max(1, budget // population_size),
            sigma0=0.5,
            seed=seed,
        ),
    )
    while not es.should_stop():
        candidates = es.ask()
        fitnesses = [objective(c) for c in candidates]
        es.tell(candidates, fitnesses)
        if best_rob < 0.0:
            break
    return FalsificationResult(bool(best_rob < 0.0), evaluations, best_x0, best_rob)
