"""Tests for dual-semantics helpers and vectorized interval linear algebra."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.intervals import (
    Interval,
    iabs,
    iatan,
    icos,
    iexp,
    ilog,
    imax,
    imin,
    interval_affine,
    interval_matvec,
    interval_relu_bounds,
    interval_sigmoid_bounds,
    interval_tanh_bounds,
    ipow,
    isigmoid,
    isin,
    isqrt,
    itan,
    itanh,
)


class TestScalarDispatch:
    """The i* helpers must agree with math.* on floats."""

    @pytest.mark.parametrize(
        "func,ref,x",
        [
            (isin, math.sin, 0.7),
            (icos, math.cos, 0.7),
            (itan, math.tan, 0.7),
            (itanh, math.tanh, 0.7),
            (iexp, math.exp, 0.7),
            (ilog, math.log, 0.7),
            (isqrt, math.sqrt, 0.7),
            (iabs, abs, -0.7),
            (iatan, math.atan, 0.7),
        ],
    )
    def test_float_semantics(self, func, ref, x):
        assert func(x) == pytest.approx(ref(x))

    def test_sigmoid_float(self):
        assert isigmoid(0.0) == pytest.approx(0.5)
        assert isigmoid(-30.0) == pytest.approx(math.exp(-30) / (1 + math.exp(-30)))

    def test_pow_float(self):
        assert ipow(2.0, 3) == pytest.approx(8.0)

    def test_min_max_float(self):
        assert imin(1.0, 2.0) == 1.0
        assert imax(1.0, 2.0) == 2.0

    def test_interval_dispatch(self):
        assert isinstance(isin(Interval(0, 1)), Interval)
        assert isinstance(imin(Interval(0, 1), 0.5), Interval)
        assert isinstance(imax(0.5, Interval(0, 1)), Interval)

    def test_min_interval_semantics(self):
        result = imin(Interval(0, 5), Interval(3, 4))
        assert result == Interval(0, 4)


class TestIntervalMatvec:
    def test_simple(self):
        matrix = np.array([[1.0, -1.0], [2.0, 0.0]])
        lo, hi = interval_matvec(matrix, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        # Row 0: x0 - x1 over [0,1]^2 -> [-1, 1]; row 1: 2 x0 -> [0, 2].
        assert lo[0] <= -1.0 <= hi[0]
        assert lo[1] <= 0.0 and hi[1] >= 2.0
        assert lo[0] <= 1.0 <= hi[0]

    def test_affine_adds_bias(self):
        matrix = np.eye(2)
        bias = np.array([10.0, -10.0])
        lo, hi = interval_affine(matrix, bias, np.zeros(2), np.ones(2))
        assert lo[0] <= 10.0 <= hi[0] + 1.0
        assert lo[1] <= -10.0

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6), st.integers(0, 10_000))
    def test_matvec_inclusion_random(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, cols)) * 3.0
        lo = rng.normal(size=cols)
        hi = lo + rng.uniform(0.0, 2.0, size=cols)
        out_lo, out_hi = interval_matvec(matrix, lo, hi)
        for _ in range(10):
            x = rng.uniform(lo, hi)
            y = matrix @ x
            assert np.all(y >= out_lo - 1e-12)
            assert np.all(y <= out_hi + 1e-12)

    def test_widening_covers_rounding(self):
        # A dot product whose naive endpoint evaluation is exact should
        # still produce bounds at least as wide as the true value.
        matrix = np.array([[0.1] * 1000])
        lo = np.full(1000, 0.1)
        hi = np.full(1000, 0.1)
        out_lo, out_hi = interval_matvec(matrix, lo, hi)
        exact = 0.1 * 0.1 * 1000
        assert out_lo[0] <= exact <= out_hi[0]


class TestActivationBounds:
    @pytest.mark.parametrize(
        "bounds_fn,numeric",
        [
            (interval_tanh_bounds, np.tanh),
            (interval_sigmoid_bounds, lambda x: 1.0 / (1.0 + np.exp(-x))),
            (interval_relu_bounds, lambda x: np.maximum(x, 0.0)),
        ],
    )
    def test_inclusion(self, bounds_fn, numeric, rng):
        lo = rng.normal(size=50) * 3.0
        hi = lo + rng.uniform(0.0, 2.0, size=50)
        out_lo, out_hi = bounds_fn(lo, hi)
        for t in np.linspace(0.0, 1.0, 7):
            x = lo + t * (hi - lo)
            y = numeric(x)
            assert np.all(y >= out_lo - 1e-12)
            assert np.all(y <= out_hi + 1e-12)

    def test_tanh_clamped(self):
        lo, hi = interval_tanh_bounds(np.array([-1e9]), np.array([1e9]))
        assert lo[0] >= -1.0
        assert hi[0] <= 1.0

    def test_sigmoid_clamped(self):
        lo, hi = interval_sigmoid_bounds(np.array([-1e9]), np.array([1e9]))
        assert lo[0] >= 0.0
        assert hi[0] <= 1.0

    def test_relu_exact(self):
        lo, hi = interval_relu_bounds(np.array([-2.0]), np.array([3.0]))
        assert lo[0] == 0.0
        assert hi[0] == 3.0
