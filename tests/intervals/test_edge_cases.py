"""Interval edge cases the vectorized/ICP paths lean on.

Three families: empty results of contraction/intersection, degenerate
(zero-width) intervals, and directed-rounding round-trips.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EmptyIntervalError, IntervalError
from repro.intervals import Box, Interval, next_down, next_up, widen
from repro.intervals.rounding import round_down, round_up


class TestEmptyContraction:
    def test_disjoint_interval_intersection_raises(self):
        with pytest.raises(EmptyIntervalError):
            Interval(0.0, 1.0).intersection(Interval(2.0, 3.0))

    def test_try_intersection_returns_none_when_disjoint(self):
        assert Interval(0.0, 1.0).try_intersection(Interval(2.0, 3.0)) is None

    def test_touching_intervals_intersect_in_a_point(self):
        result = Interval(0.0, 1.0).try_intersection(Interval(1.0, 2.0))
        assert result == Interval.point(1.0)

    def test_box_try_intersection_empty_on_one_axis(self):
        a = Box([Interval(0.0, 1.0), Interval(0.0, 1.0)])
        b = Box([Interval(0.5, 2.0), Interval(3.0, 4.0)])
        assert a.try_intersection(b) is None

    def test_box_intersection_raises_when_empty(self):
        a = Box([Interval(0.0, 1.0)])
        b = Box([Interval(5.0, 6.0)])
        with pytest.raises(EmptyIntervalError):
            a.intersection(b)

    def test_hc4_contraction_to_empty_prunes_box(self):
        """An infeasible constraint contracts the whole box away (the
        ICP prune the parallel SMT backend relies on)."""
        from repro.expr import var
        from repro.smt import ge
        from repro.smt.contractor import contract_fixpoint

        box = Box([Interval(-1.0, 1.0)])
        infeasible = ge(var("x") * var("x"), 9.0)  # x^2 >= 9 on [-1, 1]
        assert contract_fixpoint([infeasible], box, ["x"]) is None

    def test_empty_interval_construction_rejected(self):
        with pytest.raises(IntervalError, match="empty interval"):
            Interval(1.0, 0.0)


class TestDegenerateIntervals:
    def test_point_interval_properties(self):
        point = Interval.point(2.5)
        assert point.is_point()
        # width() is an outward-rounded *upper bound*: one ulp, not 0
        assert 0.0 <= point.width() <= 5e-324
        assert point.midpoint() == 2.5
        assert point.contains(2.5)

    def test_point_arithmetic_is_outward_rounded(self):
        third = Interval.point(1.0) / Interval.point(3.0)
        assert third.lo <= 1.0 / 3.0 <= third.hi
        assert third.hi - third.lo > 0.0  # inexact op widened

    def test_exact_ops_on_points_stay_points(self):
        point = Interval.point(2.0)
        assert (-point).is_point()
        assert point.abs().is_point()

    def test_degenerate_box_volume_and_bisect(self):
        box = Box([Interval.point(1.0), Interval(0.0, 2.0)])
        # the degenerate axis has one-ulp outward-rounded width, so the
        # volume upper bound is denormal-tiny rather than exactly zero
        assert 0.0 <= box.volume() < 1e-300
        assert box.widest_dimension() == 1
        left, right = box.bisect()
        assert left[0].is_point() and right[0].is_point()
        assert left[1].hi == right[1].lo

    def test_degenerate_box_sample_grid_collapses(self):
        box = Box([Interval.point(1.5), Interval(0.0, 1.0)])
        grid = box.sample_grid(3)
        assert grid.shape == (3, 2)
        np.testing.assert_allclose(grid[:, 0], 1.5)

    def test_zero_width_split_yields_two_points(self):
        left, right = Interval.point(4.0).split()
        assert left == right == Interval.point(4.0)

    def test_trig_on_point_interval_contains_true_value(self):
        for x in (0.0, 0.5, math.pi / 2, 3.0):
            image = Interval.point(x).sin()
            assert image.lo <= math.sin(x) <= image.hi
            assert image.width() < 1e-12


class TestDirectedRounding:
    def test_next_up_down_round_trip(self):
        for x in (0.0, 1.0, -1.0, 1e-300, -1e300, math.pi):
            assert next_up(next_down(x)) == x
            assert next_down(next_up(x)) == x

    def test_next_up_strictly_increases_finite_values(self):
        for x in (0.0, -0.0, 1.0, -1e-308):
            assert next_up(x) > x
            assert next_down(x) < x

    def test_infinities_are_fixed_points(self):
        assert next_up(math.inf) == math.inf
        assert next_down(-math.inf) == -math.inf
        # one-sided: moving inward from infinity is still possible
        assert next_down(math.inf) < math.inf
        assert next_up(-math.inf) > -math.inf

    def test_nan_propagates(self):
        assert math.isnan(next_up(math.nan))
        assert math.isnan(next_down(math.nan))

    def test_widen_brackets_both_endpoints(self):
        lo, hi = widen(1.0, 2.0)
        assert lo < 1.0 < 2.0 < hi
        assert hi - 2.0 < 1e-15 and 1.0 - lo < 1e-15

    def test_round_exact_flag_skips_widening(self):
        assert round_down(1.5, exact=True) == 1.5
        assert round_up(1.5, exact=True) == 1.5
        assert round_down(1.5) < 1.5 < round_up(1.5)

    def test_interval_sum_round_trip_contains_exact_result(self):
        """(x + y) - y always contains x despite outward rounding."""
        x = Interval.point(0.1)
        y = Interval.point(0.2)
        round_tripped = (x + y) - y
        assert round_tripped.contains(0.1)
        assert round_tripped.width() < 1e-15
