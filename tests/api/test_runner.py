"""run / run_batch / RunArtifact serialization."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    RunArtifact,
    derive_scenario_seed,
    get_scenario,
    run,
    run_batch,
)
from repro.barrier import SynthesisConfig
from repro.errors import ReproError


@pytest.fixture(scope="module")
def linear_artifact():
    return run("linear")


class TestRun:
    def test_linear_end_to_end(self, linear_artifact):
        assert linear_artifact.scenario == "linear"
        assert linear_artifact.status == "verified"
        assert linear_artifact.verified
        assert linear_artifact.level is not None and linear_artifact.level > 0
        assert linear_artifact.report is not None
        assert linear_artifact.certificate is not None
        assert "w_infix" in linear_artifact.certificate

    def test_stage_timings_sum_to_about_total(self, linear_artifact):
        tracked = sum(linear_artifact.stage_seconds.values())
        assert 0.0 < tracked <= linear_artifact.total_seconds + 1e-6
        assert tracked >= 0.8 * linear_artifact.total_seconds

    def test_config_override(self):
        artifact = run("linear", config=SynthesisConfig(seed=5))
        assert artifact.config["seed"] == 5
        assert artifact.synthesis_config.seed == 5

    def test_accepts_scenario_object(self):
        artifact = run(get_scenario("linear"))
        assert artifact.verified

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            run("does-not-exist")


class TestArtifactSerialization:
    def test_json_round_trip(self, linear_artifact):
        restored = RunArtifact.from_json(linear_artifact.to_json())
        assert restored.to_dict() == linear_artifact.to_dict()
        # the live report never crosses serialization
        assert restored.report is None

    def test_json_is_valid_and_sorted(self, linear_artifact):
        payload = json.loads(linear_artifact.to_json(indent=2))
        assert payload["scenario"] == "linear"
        assert payload["config"]["icp"]["delta"] == pytest.approx(1e-3)

    def test_from_dict_ignores_unknown_keys(self, linear_artifact):
        data = linear_artifact.to_dict()
        data["future_field"] = 123
        restored = RunArtifact.from_dict(data)
        assert restored.level == linear_artifact.level

    def test_error_artifact_round_trips(self):
        artifact = RunArtifact(
            scenario="x", status="error", verified=False, error="boom"
        )
        restored = RunArtifact.from_json(artifact.to_json())
        assert restored.error == "boom"
        assert not restored.verified


class TestRunBatch:
    def test_two_workers_deterministic(self):
        first = run_batch(["linear", "vanderpol"], workers=2)
        second = run_batch(["linear", "vanderpol"], workers=2)
        assert [a.scenario for a in first] == ["linear", "vanderpol"]
        assert all(a.verified for a in first)
        assert [a.level for a in first] == [b.level for b in second]
        assert [a.status for a in first] == [b.status for b in second]

    def test_parallel_artifacts_json_round_trip(self):
        for artifact in run_batch(["linear", "vanderpol"], workers=2):
            restored = RunArtifact.from_json(artifact.to_json())
            assert restored.to_dict() == artifact.to_dict()
            assert artifact.report is None  # stripped at the process boundary

    def test_serial_keeps_report(self):
        (artifact,) = run_batch(["linear"], workers=1)
        assert artifact.report is not None

    def test_matches_single_run(self, linear_artifact):
        (batched,) = run_batch(["linear"], workers=1)
        assert batched.level == linear_artifact.level
        assert batched.status == linear_artifact.status

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_unknown_name_fails_fast(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            run_batch(["linear", "nope"], workers=2)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            run_batch([42])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_batch(["linear"], workers=0)

    def test_user_registered_name_reaches_workers(self):
        """Names resolve to objects before fan-out, so scenarios that
        exist only in this process's registry still run under spawn."""
        from repro.api import register_scenario, unregister_scenario

        base = get_scenario("linear")
        custom = dataclasses.replace(base, name="session-only")
        register_scenario(custom)
        try:
            artifacts = run_batch(["session-only", "vanderpol"], workers=2)
        finally:
            unregister_scenario("session-only")
        assert [a.scenario for a in artifacts] == ["session-only", "vanderpol"]
        assert all(a.verified for a in artifacts)
        assert all(a.error is None for a in artifacts)

    def test_unpicklable_scenario_falls_back_inline(self):
        base = get_scenario("linear")
        custom = dataclasses.replace(
            base,
            name="unpicklable-inline",
            system_factory=lambda: base.system_factory(),
        )
        artifacts = run_batch([custom, "vanderpol"], workers=2)
        assert [a.scenario for a in artifacts] == ["unpicklable-inline", "vanderpol"]
        assert all(a.verified for a in artifacts)

    def test_seeded_batch_reproducible_across_worker_counts(self):
        """The batch seed derives one deterministic synthesis seed per
        scenario *before* fan-out, so artifacts match for any workers."""
        serial = run_batch(["linear", "vanderpol"], workers=1, seed=11)
        parallel = run_batch(["linear", "vanderpol"], workers=2, seed=11)
        assert [a.config["seed"] for a in serial] == [
            a.config["seed"] for a in parallel
        ]
        assert [a.level for a in serial] == [a.level for a in parallel]
        assert [a.status for a in serial] == [a.status for a in parallel]

    def test_seeded_batch_seeds_differ_per_scenario(self):
        artifacts = run_batch(["linear", "vanderpol"], workers=1, seed=11)
        seeds = [a.config["seed"] for a in artifacts]
        assert seeds[0] != seeds[1]
        assert seeds[0] == derive_scenario_seed(11, "linear")
        assert seeds[1] == derive_scenario_seed(11, "vanderpol")

    def test_derive_scenario_seed_is_stable(self):
        """Order- and process-independent: depends only on (seed, name)."""
        assert derive_scenario_seed(0, "linear") == derive_scenario_seed(0, "linear")
        assert derive_scenario_seed(0, "linear") != derive_scenario_seed(1, "linear")
        assert derive_scenario_seed(0, "linear") != derive_scenario_seed(0, "lineal")
        assert 0 <= derive_scenario_seed(123, "x") < 2**32

    def test_unseeded_batch_keeps_bundled_configs(self):
        (artifact,) = run_batch(["linear"], workers=1)
        assert artifact.config["seed"] == get_scenario("linear").config.seed

    def test_failing_scenario_becomes_error_artifact(self):
        # A scenario whose problem() raises: safe rectangle smaller than X0.
        from repro.barrier import Rectangle, RectangleComplement

        base = get_scenario("linear")
        bad = dataclasses.replace(
            base,
            name="bad-geometry",
            unsafe_set=RectangleComplement(
                Rectangle([-0.1, -0.1], [0.1, 0.1])
            ),
        )
        artifacts = run_batch([bad, "vanderpol"], workers=1)
        assert artifacts[0].status == "error"
        assert artifacts[0].error
        assert not artifacts[0].verified
        assert artifacts[1].verified
