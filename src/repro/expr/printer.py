"""Expression pretty-printing: infix strings and SMT-LIB 2 output.

The SMT-LIB printer exists for interoperability: queries built by this
library can be exported and replayed against an external dReal binary
when one is available, which is how we validated our solver's verdicts.
"""

from __future__ import annotations

from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)

__all__ = ["to_infix", "to_smtlib"]

# Precedence levels for parenthesization (larger binds tighter).
_PREC_ADD = 1
_PREC_MUL = 2
_PREC_NEG = 3
_PREC_POW = 4
_PREC_ATOM = 5


def to_infix(root: Expr, max_length: int | None = None) -> str:
    """Human-readable infix rendering (deterministic, minimal parens)."""
    rendered: dict[int, tuple[str, int]] = {}
    for node in postorder(root):
        rendered[id(node)] = _render(node, rendered)
    text = rendered[id(root)][0]
    if max_length is not None and len(text) > max_length:
        text = text[: max_length - 3] + "..."
    return text


def _render(node: Expr, rendered: dict[int, tuple[str, int]]) -> tuple[str, int]:
    if isinstance(node, Const):
        value = node.value
        if value == int(value) and abs(value) < 1e16:
            text = str(int(value))
        else:
            text = repr(value)
        return (f"({text})" if value < 0 else text, _PREC_ATOM)
    if isinstance(node, Var):
        return node.name, _PREC_ATOM
    if isinstance(node, Neg):
        child, prec = rendered[id(node.child)]
        if prec < _PREC_NEG:
            child = f"({child})"
        return f"-{child}", _PREC_NEG
    if isinstance(node, Pow):
        base, prec = rendered[id(node.base)]
        if prec < _PREC_ATOM:
            base = f"({base})"
        return f"{base}^{node.exponent}", _PREC_POW
    if isinstance(node, Unary):
        child, _ = rendered[id(node.child)]
        return f"{node.op}({child})", _PREC_ATOM
    if isinstance(node, (Min2, Max2)):
        name = "min" if isinstance(node, Min2) else "max"
        left, _ = rendered[id(node.left)]
        right, _ = rendered[id(node.right)]
        return f"{name}({left}, {right})", _PREC_ATOM
    left, lprec = rendered[id(node.left)]
    right, rprec = rendered[id(node.right)]
    if isinstance(node, Add):
        symbol, prec, right_min = " + ", _PREC_ADD, _PREC_ADD
    elif isinstance(node, Sub):
        symbol, prec, right_min = " - ", _PREC_ADD, _PREC_ADD + 1
    elif isinstance(node, Mul):
        symbol, prec, right_min = "*", _PREC_MUL, _PREC_MUL
    else:  # Div
        symbol, prec, right_min = "/", _PREC_MUL, _PREC_MUL + 1
    if lprec < prec:
        left = f"({left})"
    if rprec < right_min:
        right = f"({right})"
    return f"{left}{symbol}{right}", prec


_SMT_UNARY = {
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "tanh": "tanh",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "abs": "abs",
    "atan": "arctan",
}


def to_smtlib(root: Expr) -> str:
    """SMT-LIB 2 s-expression rendering (dReal dialect).

    ``sigmoid`` is expanded to ``1 / (1 + exp(-x))`` since dReal has no
    sigmoid primitive; ``min``/``max`` use ``ite`` encodings.
    """
    rendered: dict[int, str] = {}
    for node in postorder(root):
        rendered[id(node)] = _render_smt(node, rendered)
    return rendered[id(root)]


def _render_smt(node: Expr, rendered: dict[int, str]) -> str:
    if isinstance(node, Const):
        value = node.value
        if value < 0:
            return f"(- {_smt_number(-value)})"
        return _smt_number(value)
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Neg):
        return f"(- {rendered[id(node.child)]})"
    if isinstance(node, Pow):
        return f"(^ {rendered[id(node.base)]} {node.exponent})"
    if isinstance(node, Unary):
        child = rendered[id(node.child)]
        if node.op == "sigmoid":
            return f"(/ 1 (+ 1 (exp (- {child}))))"
        return f"({_SMT_UNARY[node.op]} {child})"
    if isinstance(node, Min2):
        left = rendered[id(node.left)]
        right = rendered[id(node.right)]
        return f"(ite (<= {left} {right}) {left} {right})"
    if isinstance(node, Max2):
        left = rendered[id(node.left)]
        right = rendered[id(node.right)]
        return f"(ite (>= {left} {right}) {left} {right})"
    symbol = {Add: "+", Sub: "-", Mul: "*", Div: "/"}[type(node)]
    return f"({symbol} {rendered[id(node.left)]} {rendered[id(node.right)]})"


def _smt_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)
