"""Benchmark-plant library tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import (
    linear_plant,
    stable_linear_system,
    van_der_pol_system,
)
from repro.errors import ReproError


class TestLinearPlant:
    def test_structure(self):
        a = np.array([[0.0, 1.0], [-2.0, -3.0]])
        b = np.array([[0.0], [1.0]])
        plant = linear_plant(a, b)
        assert plant.state_names == ["x0", "x1"]
        assert plant.input_names == ["u0"]

    def test_validation(self):
        with pytest.raises(ReproError):
            linear_plant(np.zeros((2, 3)), np.zeros((2, 1)))
        with pytest.raises(ReproError):
            linear_plant(np.eye(2), np.zeros((3, 1)))


class TestStableLinearSystem:
    def test_field_is_ax(self, rng):
        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        system = stable_linear_system(a)
        for _ in range(10):
            x = rng.uniform(-2, 2, size=2)
            assert np.allclose(system.f(x), a @ x)
            assert np.allclose(system.symbolic_f(x), a @ x, atol=1e-12)

    def test_trajectory_decays(self):
        a = np.array([[-0.5, 1.0], [-1.0, -0.5]])
        system = stable_linear_system(a)
        trace = system.simulator().simulate(np.array([1.0, 1.0]), 10.0, 0.01)
        assert np.linalg.norm(trace.final_state) < 0.01

    def test_validation(self):
        with pytest.raises(ReproError):
            stable_linear_system(np.zeros((2, 3)))


class TestVanDerPol:
    def test_reversed_origin_stable(self):
        system = van_der_pol_system(mu=1.0, reversed_time=True)
        trace = system.simulator().simulate(np.array([0.5, 0.5]), 20.0, 0.01)
        assert np.linalg.norm(trace.final_state) < 0.01

    def test_forward_limit_cycle(self):
        system = van_der_pol_system(mu=1.0, reversed_time=False)
        trace = system.simulator().simulate(np.array([0.1, 0.0]), 30.0, 0.01)
        # Forward VdP grows onto the limit cycle (amplitude about 2).
        assert np.abs(trace.states[-500:, 0]).max() > 1.5

    def test_numeric_matches_symbolic(self, rng):
        for reversed_time in (True, False):
            system = van_der_pol_system(mu=0.8, reversed_time=reversed_time)
            for _ in range(10):
                x = rng.uniform(-2, 2, size=2)
                assert np.allclose(system.f(x), system.symbolic_f(x), atol=1e-10)
