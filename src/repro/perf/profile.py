"""Per-stage latency profiling of scenario verification runs.

``repro profile <scenario>`` answers "where does the wall clock go?"
for one verification: per-pipeline-stage seconds (seed-sim / lp-fit /
smt-check / level-set), the LP-vs-SMT solver split, and — with
``compare=True`` — the same run with the kernel layer disabled, i.e.
the interpreted tape evaluators (bit-identical results, so the
comparison is pure speed).  Note the switch gates expression
evaluation only: the HC4 contractor's plan compilation is
unconditional, so "kernels off" on an HC4-heavy engine is *not* the
full pre-plan code path.

This is the measurement companion of :mod:`repro.perf.kernels`; the
machine-readable form feeds ``benchmarks/test_synthesis_micro.py``.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field

from .kernels import use_kernels

__all__ = ["ProfileReport", "format_profile", "profile_scenario"]

#: pipeline stage order for display (mirrors PIPELINE_STAGES)
_STAGE_ORDER = ("seed-sim", "lp-fit", "smt-check", "level-set")


@dataclass
class ProfileReport:
    """One profiled verification run (best wall clock over ``repeats``).

    ``baseline`` holds the kernels-disabled twin when the profile was
    taken with ``compare=True``.
    """

    scenario: str
    engine: str
    repeats: int
    kernels: bool
    status: str
    verified: bool
    total_seconds: float
    lp_seconds: float
    query_seconds: float
    other_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    baseline: "ProfileReport | None" = None
    #: ICP worker count this run was taken with (None: serial/default)
    shards: "int | None" = None

    def to_dict(self) -> dict:
        """JSON-ready view (baseline flattened recursively)."""
        data = {
            "scenario": self.scenario,
            "engine": self.engine,
            "repeats": self.repeats,
            "kernels": self.kernels,
            "status": self.status,
            "verified": self.verified,
            "total_seconds": self.total_seconds,
            "lp_seconds": self.lp_seconds,
            "query_seconds": self.query_seconds,
            "other_seconds": self.other_seconds,
            "stage_seconds": dict(self.stage_seconds),
        }
        if self.shards is not None:
            data["shards"] = self.shards
        if self.baseline is not None:
            data["baseline"] = self.baseline.to_dict()
        return data


def _profile_once(scenario, engine) -> tuple[float, "object"]:
    from ..api import run

    t0 = time.perf_counter()
    artifact = run(scenario, engine=engine, cache=False)
    return time.perf_counter() - t0, artifact


def _best_run(scenario, engine, repeats: int) -> tuple[float, "object"]:
    best_elapsed = float("inf")
    best_artifact = None
    for _ in range(max(1, repeats)):
        elapsed, artifact = _profile_once(scenario, engine)
        if elapsed < best_elapsed:
            best_elapsed, best_artifact = elapsed, artifact
    return best_elapsed, best_artifact


@contextlib.contextmanager
def _shards_env(n: int):
    """Scoped ``REPRO_SHARDS`` override (restores the previous value)."""
    old = os.environ.get("REPRO_SHARDS")
    os.environ["REPRO_SHARDS"] = str(n)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_SHARDS", None)
        else:
            os.environ["REPRO_SHARDS"] = old


def profile_scenario(
    scenario: "str | object",
    engine: "str | None" = None,
    repeats: int = 3,
    compare: bool = False,
    kernels: bool = True,
    shards: "int | None" = None,
) -> ProfileReport:
    """Profile one scenario verify; optionally against the no-kernel path.

    Parameters
    ----------
    scenario:
        Registry name (or :class:`~repro.api.Scenario` object).
    engine:
        Solver stack for the run (default: the scenario's own choice).
    repeats:
        Runs per configuration; the fastest is reported (cold-cache
        effects like tape/kernel compilation wash out after the first).
    compare:
        Also run with the kernel layer disabled and attach it as
        ``baseline`` — the interpreted pre-kernel code path, bit-identical
        in results.
    kernels:
        Kernel switch for the primary run (default on).
    shards:
        Also run the ``sharded-icp`` engine with this many worker
        processes and attach it as ``baseline``, putting serial and
        sharded SMT side by side (results are bit-identical, so the
        comparison is pure speed).  When ``engine`` is None the primary
        run uses ``batched-icp`` so the pair differs only in sharding.
        Takes the ``baseline`` slot, so ``compare`` is ignored.
    """

    def build(
        flag: bool,
        run_engine: "str | None" = engine,
        shard_count: "int | None" = None,
    ) -> ProfileReport:
        env = (
            _shards_env(shard_count)
            if shard_count is not None
            else contextlib.nullcontext()
        )
        with env, use_kernels(flag):
            elapsed, artifact = _best_run(scenario, run_engine, repeats)
        return ProfileReport(
            scenario=artifact.scenario,
            engine=artifact.engine,
            repeats=repeats,
            kernels=flag,
            status=artifact.status,
            verified=artifact.verified,
            total_seconds=elapsed,
            lp_seconds=artifact.lp_seconds,
            query_seconds=artifact.query_seconds,
            other_seconds=artifact.other_seconds,
            stage_seconds=dict(artifact.stage_seconds),
            shards=shard_count,
        )

    if shards is not None:
        shards = max(1, int(shards))
        primary = "batched-icp" if engine is None else engine
        report = build(kernels, primary)
        report.baseline = build(kernels, "sharded-icp", shards)
        return report
    report = build(kernels)
    if compare:
        report.baseline = build(not kernels)
    return report


def format_profile(report: ProfileReport) -> str:
    """Human-readable latency table (the CLI's output)."""
    base = report.baseline
    lines = [
        f"profile {report.scenario!r} — engine {report.engine!r}, "
        f"kernels {'on' if report.kernels else 'off'} "
        f"(best of {report.repeats}): {report.status}"
    ]
    header = f"{'stage':<12} {'seconds':>9} {'share':>7}"
    if base is not None:
        # Label the comparison column by what the baseline actually ran
        # with (profiling with --no-kernels flips it to the kernel path;
        # --shards makes the baseline the sharded engine).
        if base.shards is not None:
            base_label = f"{base.shards}-shard"
        else:
            base_label = "kernels-on" if base.kernels else "no-kernel"
        header += f" {base_label:>10} {'speedup':>8}"
    lines.append(header)
    total = max(report.total_seconds, 1e-12)

    stages = [s for s in _STAGE_ORDER if s in report.stage_seconds]
    stages += sorted(set(report.stage_seconds) - set(_STAGE_ORDER))
    for stage in stages:
        seconds = report.stage_seconds[stage]
        row = f"{stage:<12} {seconds:>9.4f} {seconds / total:>6.0%}"
        if base is not None:
            other = base.stage_seconds.get(stage, 0.0)
            ratio = other / seconds if seconds > 0 else float("inf")
            row += f" {other:>10.4f} {ratio:>7.2f}x"
        lines.append(row)

    row = f"{'total':<12} {report.total_seconds:>9.4f} {'100%':>7}"
    if base is not None:
        ratio = (
            base.total_seconds / report.total_seconds
            if report.total_seconds > 0
            else float("inf")
        )
        row += f" {base.total_seconds:>10.4f} {ratio:>7.2f}x"
    lines.append(row)
    lines.append(
        f"solver split: LP {report.lp_seconds:.4f}s, "
        f"SMT {report.query_seconds:.4f}s, "
        f"other {report.other_seconds:.4f}s"
    )
    return "\n".join(lines)
