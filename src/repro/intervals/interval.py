"""A sound, outward-rounded real interval.

:class:`Interval` is the scalar building block of the δ-SAT solver: every
arithmetic operation returns an interval guaranteed to contain the exact
real result for all points of the operands (inclusion isotonicity).  All
potentially inexact endpoint computations are widened by one ulp via
:mod:`repro.intervals.rounding`.

The class is immutable; operators return new intervals.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from ..errors import DomainError, EmptyIntervalError, IntervalError
from .rounding import next_down, next_up, round_down, round_up, trig_slack

__all__ = ["Interval"]

_INF = math.inf
_PI = math.pi
_TWO_PI = 2.0 * math.pi


class Interval:
    """A closed real interval ``[lo, hi]`` with outward-rounded arithmetic.

    Parameters
    ----------
    lo, hi:
        Endpoints.  ``lo`` must not exceed ``hi`` (NaNs are rejected).

    Examples
    --------
    >>> x = Interval(0.0, 1.0)
    >>> (x + x).hi >= 2.0
    True
    >>> Interval.point(3.0).is_point()
    True
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        lo = float(lo)
        hi = float(hi)
        if math.isnan(lo) or math.isnan(hi):
            raise IntervalError(f"NaN interval endpoint: [{lo}, {hi}]")
        if lo > hi:
            raise IntervalError(f"empty interval: lo={lo} > hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: float) -> "Interval":
        """Degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def entire() -> "Interval":
        """The whole real line ``[-inf, inf]``."""
        return Interval(-_INF, _INF)

    @staticmethod
    def nonnegative() -> "Interval":
        """``[0, inf]``."""
        return Interval(0.0, _INF)

    @staticmethod
    def hull_of(values: Iterable[float]) -> "Interval":
        """Smallest interval containing all ``values`` (must be non-empty)."""
        values = list(values)
        if not values:
            raise IntervalError("hull_of requires at least one value")
        return Interval(min(values), max(values))

    @staticmethod
    def from_midpoint(mid: float, radius: float) -> "Interval":
        """Interval centred at ``mid`` with half-width ``radius >= 0``."""
        if radius < 0:
            raise IntervalError(f"negative radius: {radius}")
        return Interval(round_down(mid - radius), round_up(mid + radius))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def width(self) -> float:
        """Upper-bounded width ``hi - lo`` (inf for unbounded intervals)."""
        if self.lo == -_INF or self.hi == _INF:
            return _INF
        return round_up(self.hi - self.lo)

    def midpoint(self) -> float:
        """A finite point inside the interval, central when both ends are finite."""
        if self.lo == -_INF and self.hi == _INF:
            return 0.0
        if self.lo == -_INF:
            return min(self.hi, 0.0) - 1.0 if self.hi == _INF else self.hi - 1.0
        if self.hi == _INF:
            return self.lo + 1.0
        mid = 0.5 * (self.lo + self.hi)
        if not math.isfinite(mid):  # overflow for huge finite endpoints
            mid = 0.5 * self.lo + 0.5 * self.hi
        # Guarantee containment even under rounding.
        return min(max(mid, self.lo), self.hi)

    def magnitude(self) -> float:
        """``max(|x|)`` over the interval."""
        return max(abs(self.lo), abs(self.hi))

    def mignitude(self) -> float:
        """``min(|x|)`` over the interval (0 if it contains 0)."""
        if self.contains(0.0):
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def is_point(self) -> bool:
        """True when ``lo == hi``."""
        return self.lo == self.hi

    def is_finite(self) -> bool:
        """True when both endpoints are finite."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, value: float) -> bool:
        """Membership test for a scalar."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def strictly_contains_zero(self) -> bool:
        """True when 0 is in the interior."""
        return self.lo < 0.0 < self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval":
        """Set intersection; raises :class:`EmptyIntervalError` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            raise EmptyIntervalError(f"disjoint intervals: {self} and {other}")
        return Interval(lo, hi)

    def try_intersection(self, other: "Interval") -> "Interval | None":
        """Like :meth:`intersection`, but returns None for disjoint intervals."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def inflate(self, absolute: float = 0.0, relative: float = 0.0) -> "Interval":
        """Widen by an absolute amount plus a fraction of the magnitude."""
        pad = absolute + relative * self.magnitude()
        return Interval(round_down(self.lo - pad), round_up(self.hi + pad))

    def split(self, at: float | None = None) -> tuple["Interval", "Interval"]:
        """Bisect at ``at`` (default: midpoint) into two covering halves."""
        if at is None:
            at = self.midpoint()
        if not self.contains(at):
            raise IntervalError(f"split point {at} outside {self}")
        return Interval(self.lo, at), Interval(at, self.hi)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)  # negation is exact

    def __add__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        return Interval(round_down(self.lo + other.lo), round_up(self.hi + other.hi))

    __radd__ = __add__

    def __sub__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        return Interval(round_down(self.lo - other.hi), round_up(self.hi - other.lo))

    def __rsub__(self, other: "Interval | float") -> "Interval":
        return _coerce(other) - self

    def __mul__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                p = a * b
                if math.isnan(p):  # 0 * inf — contributes 0 in interval algebra
                    p = 0.0
                products.append(p)
        return Interval(round_down(min(products)), round_up(max(products)))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        if other.lo == 0.0 and other.hi == 0.0:
            raise DomainError("division by the point interval [0, 0]")
        if other.strictly_contains_zero():
            # The true image is a union of two rays; the hull is sound.
            return Interval.entire()
        if other.lo == 0.0 or other.hi == 0.0:
            return _one_sided_divide(self, other)
        return self * other.reciprocal()

    def __rtruediv__(self, other: "Interval | float") -> "Interval":
        return _coerce(other) / self

    def reciprocal(self) -> "Interval":
        """``1 / x`` for an interval not containing zero in its interior."""
        if self.strictly_contains_zero():
            return Interval.entire()
        if self.lo == 0.0 and self.hi == 0.0:
            raise DomainError("reciprocal of [0, 0]")
        if self.lo == 0.0:
            return Interval(round_down(1.0 / self.hi), _INF)
        if self.hi == 0.0:
            return Interval(-_INF, round_up(1.0 / self.lo))
        return Interval(round_down(1.0 / self.hi), round_up(1.0 / self.lo))

    def extended_divide(self, other: "Interval") -> list["Interval"]:
        """Generalized division used by backward contractors.

        Returns the (possibly two-piece) set ``{x / y : x in self, y in
        other, y != 0}`` as a list of intervals; empty list when ``other``
        is identically zero and ``self`` excludes zero.
        """
        if not other.strictly_contains_zero():
            if other.lo == other.hi == 0.0:
                return [Interval.entire()] if self.contains(0.0) else []
            return [self / other]
        if self.contains(0.0):
            return [Interval.entire()]
        pieces: list[Interval] = []
        neg = Interval(other.lo, next_down(0.0)) if other.lo < 0 else None
        pos = Interval(next_up(0.0), other.hi) if other.hi > 0 else None
        if self.hi < 0.0:
            if pos is not None:
                pieces.append(Interval(-_INF, round_up(self.hi / pos.hi)))
            if neg is not None:
                pieces.append(Interval(round_down(self.hi / neg.lo), _INF))
        elif self.lo > 0.0:
            if neg is not None:
                pieces.append(Interval(-_INF, round_up(self.lo / neg.lo)))
            if pos is not None:
                pieces.append(Interval(round_down(self.lo / pos.hi), _INF))
        return pieces

    def __pow__(self, exponent: int) -> "Interval":
        if not isinstance(exponent, int):
            raise IntervalError(f"interval power requires an integer, got {exponent!r}")
        if exponent == 0:
            return Interval.point(1.0)
        if exponent < 0:
            return (self ** (-exponent)).reciprocal()
        if exponent % 2 == 1:
            return Interval(round_down(self.lo**exponent), round_up(self.hi**exponent))
        lo_p = self.lo**exponent
        hi_p = self.hi**exponent
        if self.contains(0.0):
            return Interval(0.0, round_up(max(lo_p, hi_p)))
        return Interval(round_down(min(lo_p, hi_p)), round_up(max(lo_p, hi_p)))

    def sq(self) -> "Interval":
        """``x**2`` (tighter name used by contractors)."""
        return self**2

    def abs(self) -> "Interval":
        """``|x|`` over the interval."""
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, self.magnitude())

    def min_with(self, other: "Interval | float") -> "Interval":
        """Pointwise ``min(x, y)`` image."""
        other = _coerce(other)
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval | float") -> "Interval":
        """Pointwise ``max(x, y)`` image."""
        other = _coerce(other)
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Elementary functions
    # ------------------------------------------------------------------
    def sqrt(self) -> "Interval":
        """Square root; the domain is clipped at zero with a DomainError below."""
        if self.hi < 0.0:
            raise DomainError(f"sqrt of negative interval {self}")
        lo = max(self.lo, 0.0)
        return Interval(
            max(round_down(math.sqrt(lo)), 0.0), round_up(math.sqrt(self.hi))
        )

    def exp(self) -> "Interval":
        lo = math.exp(self.lo) if self.lo > -_INF else 0.0
        hi = math.exp(self.hi) if self.hi < _INF else _INF
        return Interval(max(round_down(lo), 0.0), round_up(hi))

    def log(self) -> "Interval":
        if self.hi <= 0.0:
            raise DomainError(f"log of non-positive interval {self}")
        lo = -_INF if self.lo <= 0.0 else round_down(math.log(self.lo))
        hi = round_up(math.log(self.hi)) if self.hi < _INF else _INF
        return Interval(lo, hi)

    def tanh(self) -> "Interval":
        return Interval(
            max(round_down(math.tanh(self.lo)), -1.0),
            min(round_up(math.tanh(self.hi)), 1.0),
        )

    def sigmoid(self) -> "Interval":
        """Logistic function ``1 / (1 + exp(-x))``; monotone increasing."""
        return Interval(
            max(round_down(_sigmoid(self.lo)), 0.0),
            min(round_up(_sigmoid(self.hi)), 1.0),
        )

    def atan(self) -> "Interval":
        return Interval(round_down(math.atan(self.lo)), round_up(math.atan(self.hi)))

    def sin(self) -> "Interval":
        return _periodic_image(self, math.sin, peak_offset=_PI / 2.0)

    def cos(self) -> "Interval":
        return _periodic_image(self, math.cos, peak_offset=0.0)

    def tan(self) -> "Interval":
        """Tangent; returns the whole line when a pole may lie inside."""
        if not self.is_finite() or self.width() >= _PI:
            return Interval.entire()
        # Poles at pi/2 + k*pi; the slack is relative to the interval
        # magnitude, the same formula the vectorized paths use, so the
        # pole-containment decision is bit-identical across the scalar
        # and array implementations.
        slack = trig_slack(self.magnitude())
        k = math.ceil((self.lo - slack - _PI / 2.0) / _PI)
        pole = _PI / 2.0 + k * _PI
        if pole <= self.hi + slack:
            return Interval.entire()
        return Interval(round_down(math.tan(self.lo)), round_up(math.tan(self.hi)))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __iter__(self) -> Iterator[float]:
        return iter((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Interval({self.lo!r}, {self.hi!r})"

    def __str__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


def _coerce(value: "Interval | float") -> Interval:
    if isinstance(value, Interval):
        return value
    return Interval.point(float(value))


def _one_sided_divide(num: Interval, den: Interval) -> Interval:
    """Division by an interval touching zero at exactly one endpoint."""
    if den.lo == 0.0:  # den subset of [0, +)
        rec = Interval(round_down(1.0 / den.hi), _INF)
    else:  # den.hi == 0.0, subset of (-, 0]
        rec = Interval(-_INF, round_up(1.0 / den.lo))
    return num * rec


def _sigmoid(x: float) -> float:
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def _periodic_image(ival: Interval, func, peak_offset: float) -> Interval:
    """Sound image of sin/cos over an interval.

    ``func`` is math.sin or math.cos and ``peak_offset`` locates its first
    maximum at ``peak_offset + 2*pi*k`` (minima are shifted by pi).  The
    float representation of pi is inexact, so critical-point containment
    tests are inflated by a relative slack; the endpoint images are always
    included with outward rounding, which keeps the result sound.
    """
    if not ival.is_finite() or ival.width() >= _TWO_PI:
        return Interval(-1.0, 1.0)
    lo_val = func(ival.lo)
    hi_val = func(ival.hi)
    lower = round_down(min(lo_val, hi_val))
    upper = round_up(max(lo_val, hi_val))
    if _contains_critical(ival, peak_offset):
        upper = 1.0
    if _contains_critical(ival, peak_offset + _PI):
        lower = -1.0
    return Interval(max(lower, -1.0), min(upper, 1.0))


def _contains_critical(ival: Interval, offset: float) -> bool:
    """Does ``ival`` (slightly inflated) contain ``offset + 2*pi*k`` for some k?"""
    slack = trig_slack(ival.magnitude())
    k = math.ceil((ival.lo - slack - offset) / _TWO_PI)
    point = offset + _TWO_PI * k
    return point <= ival.hi + slack
