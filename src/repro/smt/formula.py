"""Boolean combinations of constraints and DNF normalization.

The branch-and-prune core decides conjunctions.  Disjunctions (needed
for region complements like ``x ∉ X0``) are normalized to DNF and solved
as independent subproblems, matching dReal's internal case split.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..errors import ExpressionError
from .constraint import Constraint

__all__ = ["Formula", "Atom", "And", "Or", "to_dnf", "conjunction_of"]


class Formula:
    """Base class of boolean formula nodes over atomic constraints."""

    def __and__(self, other: "Formula") -> "And":
        return And([self, other])

    def __or__(self, other: "Formula") -> "Or":
        return Or([self, other])


class Atom(Formula):
    """Leaf formula wrapping one :class:`Constraint`."""

    def __init__(self, constraint: Constraint):
        if not isinstance(constraint, Constraint):
            raise ExpressionError(f"Atom expects a Constraint, got {constraint!r}")
        self.constraint = constraint

    def __repr__(self) -> str:
        return f"Atom({self.constraint!r})"


class And(Formula):
    """Conjunction of sub-formulas."""

    def __init__(self, parts: Iterable[Formula]):
        self.parts = [_as_formula(p) for p in parts]
        if not self.parts:
            raise ExpressionError("And requires at least one part")

    def __repr__(self) -> str:
        return f"And({self.parts!r})"


class Or(Formula):
    """Disjunction of sub-formulas."""

    def __init__(self, parts: Iterable[Formula]):
        self.parts = [_as_formula(p) for p in parts]
        if not self.parts:
            raise ExpressionError("Or requires at least one part")

    def __repr__(self) -> str:
        return f"Or({self.parts!r})"


def _as_formula(part: "Formula | Constraint") -> Formula:
    if isinstance(part, Formula):
        return part
    if isinstance(part, Constraint):
        return Atom(part)
    raise ExpressionError(f"cannot interpret {part!r} as a formula")


def to_dnf(formula: "Formula | Constraint") -> list[list[Constraint]]:
    """Disjunctive normal form: a list of conjunctions of atoms.

    The expansion is exact (no simplification); the practical formulas in
    this library — region memberships and their complements — have at
    most a handful of disjuncts.
    """
    formula = _as_formula(formula)
    if isinstance(formula, Atom):
        return [[formula.constraint]]
    if isinstance(formula, Or):
        result: list[list[Constraint]] = []
        for part in formula.parts:
            result.extend(to_dnf(part))
        return result
    if isinstance(formula, And):
        product: list[list[Constraint]] = [[]]
        for part in formula.parts:
            branches = to_dnf(part)
            product = [
                existing + branch
                for existing, branch in itertools.product(product, branches)
            ]
        return product
    raise ExpressionError(f"unknown formula node {type(formula).__name__}")


def conjunction_of(parts: Sequence["Constraint | Formula"]) -> list[Constraint]:
    """Flatten parts into a single conjunction; raises if any Or appears."""
    flat: list[Constraint] = []
    for part in parts:
        branches = to_dnf(_as_formula(part))
        if len(branches) != 1:
            raise ExpressionError(
                "conjunction_of cannot flatten a disjunctive formula; use to_dnf"
            )
        flat.extend(branches[0])
    return flat
