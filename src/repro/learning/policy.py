"""Direct policy search: CMA-ES over flat network parameters.

This is the training pipeline of Section 4.2: start from a random
network, let CMA-ES optimize all weights and biases against the tracking
cost, snapshot intermediate controllers (for Figure 4's evolution
panels), and return the best network found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..dynamics import PiecewiseLinearPath, StraightLinePath
from ..errors import TrainingError
from ..nn import FeedforwardNetwork
from .cmaes import CmaEs, CmaEsConfig, CmaEsResult
from .cost import CostWeights, tracking_cost

__all__ = ["PolicySearchConfig", "PolicySearchResult", "policy_search"]


@dataclass
class PolicySearchConfig:
    """Training setup mirroring the paper's experiment.

    The paper used a population of 152 and up to 50 iterations for the
    Figure 4 run; those are expensive defaults for CI, so the library
    default is smaller — the figure-4 experiment passes the paper values
    explicitly.
    """

    steps: int = 300
    dt: float = 0.2
    speed: float = 1.0
    population_size: int = 24
    max_iterations: int = 30
    sigma0: float = 0.5
    seed: int | None = None
    weights: CostWeights = field(default_factory=CostWeights)
    #: iteration numbers at which to snapshot the mean controller
    snapshot_iterations: tuple[int, ...] = ()


@dataclass
class PolicySearchResult:
    """Outcome of a policy search run."""

    network: FeedforwardNetwork
    best_cost: float
    cmaes: CmaEsResult
    #: iteration -> network controlled by that iteration's best parameters
    snapshots: dict[int, FeedforwardNetwork] = field(default_factory=dict)
    #: initial (random) network, before any optimization
    initial_network: FeedforwardNetwork | None = None


def policy_search(
    network: FeedforwardNetwork,
    path: "PiecewiseLinearPath | StraightLinePath",
    initial_state: Sequence[float],
    config: PolicySearchConfig | None = None,
    progress: Callable[[int, float], None] | None = None,
) -> PolicySearchResult:
    """Optimize ``network`` in place-free fashion against the tracking cost.

    The input network provides the architecture and the starting
    parameters; the returned result holds a *copy* with the optimized
    parameters (the input is not mutated).
    """
    config = config or PolicySearchConfig()
    if network.input_dimension != 2 or network.output_dimension != 1:
        raise TrainingError(
            "policy search expects a (d_err, theta_err) -> u controller; got "
            f"{network.input_dimension} -> {network.output_dimension}"
        )

    template = network.copy()
    initial_network = network.copy()

    def objective(parameters: np.ndarray) -> float:
        template.set_parameters(parameters)
        return tracking_cost(
            template,
            path,
            initial_state,
            steps=config.steps,
            dt=config.dt,
            speed=config.speed,
            weights=config.weights,
        )

    es = CmaEs(
        network.get_parameters(),
        CmaEsConfig(
            population_size=config.population_size,
            max_iterations=config.max_iterations,
            sigma0=config.sigma0,
            seed=config.seed,
        ),
    )
    snapshots: dict[int, FeedforwardNetwork] = {}
    want_snapshots = set(config.snapshot_iterations)
    while not es.should_stop():
        candidates = es.ask()
        fitnesses = [objective(c) for c in candidates]
        es.tell(candidates, fitnesses)
        if es.iteration in want_snapshots:
            snap = network.copy()
            snap.set_parameters(es.best_solution)
            snapshots[es.iteration] = snap
        if progress is not None:
            progress(es.iteration, es.best_fitness)

    trained = network.copy()
    trained.set_parameters(es.best_solution)
    return PolicySearchResult(
        network=trained,
        best_cost=es.best_fitness,
        cmaes=es.result(),
        snapshots=snapshots,
        initial_network=initial_network,
    )
