"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep hypothesis deterministic and CI-friendly.
settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("ci")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_sets():
    """(X0, U, safe_rect) of the paper's Section 4.3."""
    from repro.barrier import Rectangle, RectangleComplement

    eps = 0.1
    x0 = Rectangle([-1.0, -math.pi / 16], [1.0, math.pi / 16])
    safe = Rectangle([-5.0, -(math.pi / 2 - eps)], [5.0, math.pi / 2 - eps])
    return x0, RectangleComplement(safe), safe


@pytest.fixture(scope="session")
def small_controller():
    """Deterministic 4-neuron stabilizing controller (session-cached)."""
    from repro.learning import proportional_controller_network

    return proportional_controller_network(4)


@pytest.fixture(scope="session")
def small_system(small_controller):
    """Closed-loop error dynamics for the small controller."""
    from repro.dynamics import error_dynamics_system

    return error_dynamics_system(small_controller)
