"""Safety-aware training tests (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.learning import (
    SafetyPenaltyConfig,
    proportional_controller_network,
    safety_penalty,
    train_safe_controller,
)
from repro.nn import FeedforwardNetwork, Layer


def unsafe_controller():
    """Destabilizing gains: trajectories spiral out of the envelope."""
    return proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)


class TestSafetyPenalty:
    def test_zero_for_safe_controller(self):
        net = proportional_controller_network(6)
        penalty = safety_penalty(net)
        # Stable controller: no excursions, converged -> near zero
        # (terminal-norm term only, and the trajectories reach ~0).
        assert penalty < 1.0

    def test_positive_for_unsafe_controller(self):
        penalty = safety_penalty(unsafe_controller())
        assert penalty > 1e3

    def test_orders_controllers(self):
        """Weaker stabilizer (slower convergence) costs more."""
        strong = proportional_controller_network(4, d_gain=0.6, theta_gain=2.0)
        weak = proportional_controller_network(4, d_gain=0.1, theta_gain=0.4)
        assert safety_penalty(strong) < safety_penalty(weak)

    def test_config_duration_scaling(self):
        net = unsafe_controller()
        short = safety_penalty(net, SafetyPenaltyConfig(duration=2.0))
        long = safety_penalty(net, SafetyPenaltyConfig(duration=10.0))
        assert long >= short


class TestTrainSafeController:
    def test_negative_weight_rejected(self):
        with pytest.raises(TrainingError):
            train_safe_controller(safety_weight=-1.0)

    def test_small_run_structure(self):
        result = train_safe_controller(
            hidden_neurons=4,
            seed=0,
            population_size=8,
            max_iterations=4,
            steps=120,
            dt=0.6,
            verify=False,
        )
        assert result.verification is None
        assert not result.verified
        assert result.network.hidden_sizes == [4]
        assert len(result.history) == 4
        assert result.combined_cost <= result.history[0]

    def test_penalty_discourages_unsafe_minima(self):
        """With a huge safety weight, the trained controller's penalty
        must be small even after few iterations."""
        result = train_safe_controller(
            hidden_neurons=4,
            seed=2,
            population_size=10,
            max_iterations=8,
            steps=120,
            dt=0.6,
            safety_weight=100.0,
            verify=False,
        )
        assert result.safety_penalty < 1e3
