"""Sampler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.intervals import Box, Interval
from repro.sim import (
    sample_boundary,
    sample_grid,
    sample_latin_hypercube,
    sample_uniform,
)

BOX = Box.from_bounds([-1.0, 0.0], [1.0, 2.0])


class TestUniform:
    def test_inside(self, rng):
        points = sample_uniform(BOX, 100, rng)
        assert points.shape == (100, 2)
        assert all(BOX.contains(p) for p in points)

    def test_reproducible(self):
        a = sample_uniform(BOX, 10, np.random.default_rng(1))
        b = sample_uniform(BOX, 10, np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_count_validation(self, rng):
        with pytest.raises(ReproError):
            sample_uniform(BOX, 0, rng)

    def test_unbounded_rejected(self, rng):
        with pytest.raises(ReproError):
            sample_uniform(Box([Interval(0, np.inf)]), 5, rng)


class TestGrid:
    def test_shape(self):
        grid = sample_grid(BOX, 4)
        assert grid.shape == (16, 2)
        assert all(BOX.contains(p) for p in grid)

    def test_includes_corners(self):
        grid = sample_grid(BOX, 3)
        corners = {(-1.0, 0.0), (1.0, 2.0), (-1.0, 2.0), (1.0, 0.0)}
        grid_set = {tuple(p) for p in grid}
        assert corners <= grid_set


class TestLatinHypercube:
    def test_inside(self, rng):
        points = sample_latin_hypercube(BOX, 50, rng)
        assert points.shape == (50, 2)
        assert all(BOX.contains(p) for p in points)

    def test_stratification(self, rng):
        """Each of n strata per axis contains exactly one point."""
        n = 20
        points = sample_latin_hypercube(BOX, n, rng)
        for axis, (lo, hi) in enumerate([(-1.0, 1.0), (0.0, 2.0)]):
            strata = np.floor((points[:, axis] - lo) / (hi - lo) * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert len(set(strata)) == n

    def test_count_validation(self, rng):
        with pytest.raises(ReproError):
            sample_latin_hypercube(BOX, 0, rng)


class TestBoundary:
    def test_on_faces(self, rng):
        points = sample_boundary(BOX, 5, rng)
        assert points.shape == (20, 2)  # 2 dims * 2 faces * 5
        for p in points:
            on_face = (
                p[0] in (-1.0, 1.0) or p[1] in (0.0, 2.0)
            )
            assert on_face

    def test_validation(self, rng):
        with pytest.raises(ReproError):
            sample_boundary(BOX, 0, rng)
