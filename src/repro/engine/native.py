"""The ``native`` engine: today's scalar code paths, unchanged.

Each backend is a thin adapter over the pre-engine implementation —
:class:`~repro.sim.Simulator` per-trace integration, the
margin-maximizing LP of :func:`repro.barrier.lp.fit_generator`, and the
serial :func:`repro.smt.check_exists_on_boxes` dispatch — so the default
engine is bit-identical to the historical behavior (the Table-1 and
ablation outputs do not move).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..barrier.lp import GeneratorCandidate, LpConfig
from ..sim import Trace
from ..smt import IcpConfig, SmtResult, Subproblem, check_exists_on_boxes

__all__ = ["NativeSimBackend", "NativeLpBackend", "SerialSmtBackend"]


class NativeSimBackend:
    """Per-trace scalar integration through ``system.simulator()``."""

    name = "native-sim"

    def simulate(
        self,
        system,
        initial_states: np.ndarray,
        duration: float,
        dt: float,
        method: str = "rk4",
        stop_condition: Callable[[np.ndarray], bool] | None = None,
    ) -> list[Trace]:
        """Integrate each initial state into a :class:`Trace`, serially."""
        simulator = system.simulator(method=method)
        return simulator.simulate_batch(
            initial_states, duration, dt, stop_condition=stop_condition
        )


class NativeLpBackend:
    """The margin-maximizing LP of :func:`repro.barrier.lp.fit_generator`."""

    name = "native-lp"

    def fit(
        self,
        template,
        points: np.ndarray,
        system,
        config: LpConfig | None = None,
        separation: "tuple[np.ndarray, np.ndarray] | None" = None,
        assembler: "object | None" = None,
    ) -> GeneratorCandidate:
        """Fit a generator candidate to trace points via the margin LP."""
        from ..barrier.lp import fit_generator

        return fit_generator(
            template, points, system, config,
            separation=separation, assembler=assembler,
        )


class SerialSmtBackend:
    """Serial subproblem dispatch via :func:`check_exists_on_boxes`."""

    name = "serial-smt"

    def check(
        self,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: IcpConfig | None = None,
    ) -> SmtResult:
        """Solve the subproblems one box at a time with the scalar ICP."""
        return check_exists_on_boxes(subproblems, names, config)
