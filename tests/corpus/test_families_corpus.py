"""The corpus scenario families: registration, physics, verdicts."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import api
from repro.api import family_names, get_family
from repro.corpus import CORPUS_FAMILY_NAMES
from repro.dynamics import (
    ackermann_plant,
    planar_quadrotor_plant,
    unicycle_plant,
)
from repro.errors import ReproError


def test_registry_grows_to_eleven_families():
    names = family_names()
    for name in CORPUS_FAMILY_NAMES:
        assert name in names
    assert len(names) >= 11


def test_families_lazy_load_without_importing_corpus():
    """`repro families` must see the corpus without an explicit import."""
    code = (
        "import sys\n"
        "from repro.api import family_names\n"
        "assert 'repro.corpus' not in sys.modules\n"
        "names = family_names()\n"
        "assert 'ackermann' in names and 'quadrotor' in names, names\n"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, capture_output=True
    )


def test_corpus_families_are_tagged():
    for name in CORPUS_FAMILY_NAMES:
        assert "corpus" in get_family(name).tags


def test_stress_families_are_marked():
    assert "stress" in get_family("quadrotor").tags


@pytest.mark.parametrize(
    "name, level",
    [
        ("ackermann", 0.18059453719704577),
        ("unicycle", 0.3713608146735929),
        ("dubins-nn", 1.392972723648998),
        ("vanderpol", 0.31978277489787965),
        ("double-integrator", 0.9701283310084667),
    ],
)
def test_default_points_verify(name, level):
    artifact = api.run(
        get_family(name).instantiate(), engine="batched-icp", cache=False
    )
    assert artifact.status == "verified"
    assert artifact.level == pytest.approx(level, rel=1e-9)


def test_quadrotor_default_is_a_fast_honest_failure():
    """The saturated gravity cascade defeats the quadratic template —
    shipped as a stress family with a capped budget, so the corpus keeps
    a deterministic non-verifying point without burning minutes."""
    artifact = api.run(
        get_family("quadrotor").instantiate(), engine="batched-icp", cache=False
    )
    assert artifact.status == "no-candidate"


def test_dubins_nn_logsig_matches_tansig_exactly():
    """2*sigma(2x) - 1 == tanh(x): both activations encode the *same*
    controller, so the synthesized level must agree bit-for-bit."""
    levels = {}
    for activation in ("tansig", "logsig"):
        scenario = get_family("dubins-nn").instantiate(activation=activation)
        artifact = api.run(scenario, engine="batched-icp", cache=False)
        assert artifact.status == "verified"
        levels[activation] = artifact.level
    assert levels["tansig"] == levels["logsig"]


def test_dubins_nn_width_sweep_verifies():
    for width in (2, 6):
        artifact = api.run(
            get_family("dubins-nn").instantiate(nn_width=width),
            engine="batched-icp",
            cache=False,
        )
        assert artifact.status == "verified", (width, artifact.status)


def test_corpus_systems_have_vectorized_forms():
    """Every family's closed loop must offer a batch path (all engines)."""
    for name in CORPUS_FAMILY_NAMES:
        system = get_family(name).instantiate().system_factory()
        points = np.zeros((4, system.dimension)) + 0.05
        batch = system.f_vectorized(points)
        assert batch.shape == points.shape
        np.testing.assert_allclose(batch[0], system.f(points[0]))


@pytest.mark.parametrize(
    "factory, kwargs, match",
    [
        (ackermann_plant, {"speed": 0.0}, "speed and wheelbase"),
        (ackermann_plant, {"wheelbase": -1.0}, "speed and wheelbase"),
        (ackermann_plant, {"track": 3.0, "wheelbase": 1.0}, "track"),
        (unicycle_plant, {"speed": -0.5}, "speed and corridor"),
        (unicycle_plant, {"field_gain": -0.1}, "field_gain"),
        (unicycle_plant, {"field_sharpness": 0.0}, "field_gain"),
        (planar_quadrotor_plant, {"inertia": 0.0}, "inertia"),
    ],
)
def test_plant_parameter_validation(factory, kwargs, match):
    with pytest.raises(ReproError, match=match):
        factory(**kwargs)


def test_ackermann_rational_steering_correction():
    """The track-width term divides by 1 + (track/2L)·tan(delta); the
    plant field must match the hand formula at a few states."""
    from repro.expr import evaluate

    speed, wheelbase, track = 1.2, 1.5, 0.9
    plant = ackermann_plant(speed=speed, wheelbase=wheelbase, track=track)
    for epsi, delta in [(0.1, 0.2), (-0.3, -0.1), (0.0, 0.35)]:
        env = {"ey": 0.4, "epsi": epsi, "delta": delta}
        expected = (
            (speed / wheelbase)
            * np.tan(delta)
            / (1.0 + track / (2.0 * wheelbase) * np.tan(delta))
        )
        assert evaluate(plant.field_exprs[0], env) == pytest.approx(
            speed * np.sin(epsi)
        )
        assert evaluate(plant.field_exprs[1], env) == pytest.approx(expected)
