"""The chaos harness: fake solver, report plumbing, a tiny campaign."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ReproError, SolverError
from repro.resilience import faults
from repro.resilience.chaos import (
    CHAOS_SCENARIOS,
    ChaosOutcome,
    ChaosReport,
    ChaosSolver,
    chaos,
    write_chaos_reproducer,
)
from repro.resilience.faults import FaultAction, FaultPlan
from repro.resilience.supervisor import clear_incidents, reset_breakers


@pytest.fixture(autouse=True)
def _clean_state():
    faults.clear_plan()
    reset_breakers()
    clear_incidents()
    yield
    faults.clear_plan()
    reset_breakers()
    clear_incidents()


def _query():
    from repro.solvers.smtlib import SmtLibQuery

    return SmtLibQuery(text="(check-sat)", names=("x",), ops=frozenset(), delta=0.01)


class TestChaosSolver:
    def test_fault_free_answer_is_unknown(self):
        from repro.smt.result import Verdict

        result = ChaosSolver().solve(_query(), timeout=1.0)
        assert result.verdict is Verdict.UNKNOWN

    def test_spawn_fault_raises_solver_error(self):
        plan = FaultPlan((FaultAction("solver.spawn", "error", at=0),))
        with faults.injected(plan):
            with pytest.raises(SolverError):
                ChaosSolver().solve(_query(), timeout=1.0)

    def test_hang_parks_on_the_cancel_event(self):
        plan = FaultPlan((FaultAction("solver.output", "hang", at=0),))
        cancel = threading.Event()
        cancel.set()  # already cancelled: the hang must return immediately
        with faults.injected(plan):
            result = ChaosSolver().solve(_query(), timeout=30.0, cancel=cancel)
        assert result is not None

    def test_garbage_counts_as_breaker_failure(self):
        from repro.resilience.supervisor import breaker_for

        plan = FaultPlan((FaultAction("solver.output", "garbage", at=0, count=3),))
        with faults.injected(plan):
            for _ in range(3):
                ChaosSolver().solve(_query(), timeout=1.0)
        assert breaker_for("solver.chaos").state == "open"


class TestReportPlumbing:
    def outcome(self, ok=True):
        return ChaosOutcome(
            index=0,
            scenario="store-torn",
            family="linear",
            params={"damping": 0.5},
            engine="batched-icp",
            seed=0,
            plan=FaultPlan((FaultAction("store.write", "torn"),)).to_dict(),
            ok=ok,
            detail="" if ok else "boom",
            fired=[{"seam": "store.write", "kind": "torn", "hit": 0, "detail": ""}],
            recovered=ok,
        )

    def test_report_ok_and_counts(self):
        report = ChaosReport(seed=0, samples=2)
        report.outcomes = [self.outcome(), self.outcome(ok=False)]
        assert not report.ok
        assert len(report.failures) == 1
        data = report.to_dict()
        assert data["faults_fired"] == 2
        assert data["recovered"] == 1
        assert "FAIL [store-torn]" in report.format()

    def test_reproducer_round_trips(self, tmp_path):
        path = write_chaos_reproducer(self.outcome(ok=False), tmp_path)
        data = json.loads(path.read_text())
        assert data["scenario"] == "store-torn"
        assert FaultPlan.from_dict(data["plan"]).actions[0].kind == "torn"


class TestCampaign:
    def test_rejects_unknown_scenario(self):
        with pytest.raises(ReproError, match="unknown chaos scenario"):
            chaos(samples=1, scenarios=("nope",))

    def test_rejects_zero_samples(self):
        with pytest.raises(ReproError):
            chaos(samples=0)

    def test_smoke_store_and_journal_faults(self, tmp_path):
        """Two cheap end-to-end samples: torn store write, torn journal."""
        report = chaos(
            samples=2,
            seed=0,
            families=("linear",),
            scenarios=("store-torn", "journal-torn"),
            hard_timeout=90.0,
            reproducers_dir=tmp_path,
        )
        assert [o.scenario for o in report.outcomes] == [
            "store-torn",
            "journal-torn",
        ]
        assert report.ok, report.format()
        assert all(o.fired for o in report.outcomes)
        assert not list(tmp_path.iterdir())  # no failures -> no reproducers
        # Chaos always cleans up after itself.
        assert faults.active_plan() is None

    def test_scenario_rotation_covers_the_catalog(self):
        assert len(set(CHAOS_SCENARIOS)) == len(CHAOS_SCENARIOS)
        assert set(CHAOS_SCENARIOS) >= {"shard-kill", "pool-kill", "store-torn"}
