"""Command-line interface: ``python -m repro <command>``.

Commands
--------
scenarios list the registered verification scenarios (``--json`` for tooling)
families  list the registered scenario families + their parameters
engines   list the registered solver engines (``--json`` for tooling,
          including per-engine availability + reason)
solvers   probe the external SMT solver binaries (z3/dreal) the
          ``portfolio`` engine races (``--json`` for tooling)
verify    run the Figure-1 verification on a registered scenario
          (``--scenario``) or on the paper's Dubins case study with a
          hand-built, trained, or JSON-loaded controller
profile   per-stage latency breakdown of a scenario verify
          (``--compare`` adds the kernels-off baseline columns)
batch     verify several scenarios in parallel worker processes
sweep     shard a family's parameter grid across workers, skipping the
          content-addressed artifact cache's hits
serve     run the verification service (async job API over the store)
submit    submit a scenario/family job to a running service
jobs      list a running service's jobs
watch     stream one job's stage/point progress events
cancel    cancel a service job
train     CMA-ES policy search; optionally save the controller
falsify   simulation-based falsification baseline on the same problem
table1    regenerate Table 1 (``--families`` appends family rows)
figure4   regenerate Figure 4's training-evolution metrics
figure5   regenerate Figure 5 (phase portrait, ASCII)
fuzz      differential fuzz of the scenario-family corpus: sampled
          parameter points checked for cross-engine verdict agreement,
          cache-key stability, artifact JSON round-trips, and twin
          expected-verdict conformance; failures shrink to minimal
          reproducers under ``tests/corpus/regressions/``
chaos     re-run corpus points under seeded fault injection (worker
          kills/hangs, solver garbage, torn journal/store writes) and
          assert every fault is recovered or cleanly degraded: no
          hangs, no verdict flips, no leaked processes or shm segments

``verify``, ``batch``, ``sweep``, and ``table1`` accept ``--engine`` to
pick the solver stack (``repro engines`` lists them; default
``native``); ``--engine portfolio`` races external SMT solvers against
the batched ICP (``verify --solver-timeout`` caps each external
subprocess, see ``docs/solvers.md``).  ``sweep`` caches artifacts under ``$REPRO_STORE`` (default
``~/.cache/repro/store``); ``REPRO_CACHE=1`` opts ``verify``/``batch``
into the same cache.  ``repro serve`` exposes the same cached runs as a
long-lived HTTP job service (see ``docs/service.md``); ``submit`` /
``jobs`` / ``watch`` / ``cancel`` talk to it via ``--url``.

``sweep`` and ``batch`` exit nonzero when any point errors, so CI
wrappers can gate on partial failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Barrier-certificate verification of NN-controlled CPS "
        "(reproduction of Tuncali et al., DAC 2018)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scenarios = sub.add_parser("scenarios", help="list registered scenarios")
    p_scenarios.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON (for tooling)",
    )

    p_families = sub.add_parser(
        "families", help="list registered scenario families"
    )
    p_families.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON (for tooling)",
    )

    p_engines = sub.add_parser("engines", help="list registered solver engines")
    p_engines.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON (for tooling), including "
        "per-engine `available` + `reason`",
    )

    p_solvers = sub.add_parser(
        "solvers",
        help="probe the external SMT solvers the portfolio engine races",
    )
    p_solvers.add_argument(
        "--json", action="store_true",
        help="emit the probe results as JSON (for tooling)",
    )
    p_solvers.add_argument(
        "--refresh", action="store_true",
        help="re-probe binaries instead of using cached results",
    )

    p_verify = sub.add_parser("verify", help="verify a controller or scenario")
    p_verify.add_argument(
        "--scenario", type=str, default="",
        help="registered scenario name (see `repro scenarios`); overrides "
        "the controller flags below",
    )
    # None = "not given": lets --scenario runs keep their bundled config
    # while an explicit flag (even at its default value) always wins.
    p_verify.add_argument("--neurons", type=int, default=10)
    p_verify.add_argument("--seed", type=int, default=None,
                          help="synthesis seed (default 0)")
    p_verify.add_argument("--delta", type=float, default=None,
                          help="solver precision (default 1e-3)")
    p_verify.add_argument("--gamma", type=float, default=None,
                          help="Lie-derivative slack (default 1e-6)")
    p_verify.add_argument(
        "--controller", type=str, default="",
        help="JSON file of a saved controller (default: hand-built)",
    )
    p_verify.add_argument(
        "--trained", action="store_true",
        help="train with CMA-ES before verifying",
    )
    p_verify.add_argument(
        "--json", type=str, default="", metavar="FILE",
        help="also write the RunArtifact as JSON",
    )
    p_verify.add_argument(
        "--engine", type=str, default=None,
        help="solver engine (see `repro engines`; default: native)",
    )
    p_verify.add_argument(
        "--solver-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per external SMT solver process "
        "(portfolio engine only; default: the ICP time limit, else 30s)",
    )
    p_verify.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="ICP worker processes for the sharded-icp/portfolio engines "
        "(default: REPRO_SHARDS, else 1; results are bit-identical at "
        "any shard count)",
    )

    p_profile = sub.add_parser(
        "profile",
        help="per-stage latency breakdown of one scenario verify",
    )
    p_profile.add_argument(
        "scenario", metavar="SCENARIO",
        help="registered scenario name (see `repro scenarios`)",
    )
    p_profile.add_argument(
        "--engine", type=str, default=None,
        help="solver engine (see `repro engines`; default: scenario's own)",
    )
    p_profile.add_argument(
        "--repeats", type=int, default=3,
        help="runs per configuration; the fastest is reported (default 3)",
    )
    p_profile.add_argument(
        "--compare", action="store_true",
        help="also time the kernels-disabled interpreted path "
        "(bit-identical results; doubles the runtime)",
    )
    p_profile.add_argument(
        "--no-kernels", action="store_true",
        help="profile with the kernel layer disabled",
    )
    p_profile.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="also time the SMT stage on the sharded-icp engine with N "
        "worker processes, as a side-by-side baseline column",
    )
    p_profile.add_argument(
        "--json", type=str, default="", metavar="FILE",
        help="also write the profile report as JSON",
    )

    p_batch = sub.add_parser(
        "batch", help="verify several scenarios in parallel"
    )
    p_batch.add_argument(
        "names", nargs="*", metavar="SCENARIO",
        help="scenario names (default: every registered scenario)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: min(#scenarios, cpu count))",
    )
    p_batch.add_argument(
        "--json", type=str, default="", metavar="FILE",
        help="write the list of RunArtifacts as JSON",
    )
    p_batch.add_argument(
        "--engine", type=str, default=None,
        help="solver engine for every run (see `repro engines`)",
    )
    p_batch.add_argument(
        "--seed", type=int, default=None,
        help="batch seed: each scenario derives its own deterministic "
        "synthesis seed, making artifacts reproducible for any --workers",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="sweep a scenario family's parameter space (cached, sharded)",
    )
    p_sweep.add_argument(
        "family", metavar="FAMILY",
        help="registered family name (see `repro families`)",
    )
    p_sweep.add_argument(
        "--grid", nargs="+", metavar="PARAM=SPEC", default=[],
        help="parameter axes: lo:hi:count linspace (speed=2:6:3), "
        "comma list (nn_width=8,10), or a single value",
    )
    p_sweep.add_argument(
        "--samples", type=int, default=None,
        help="instead of --grid: draw N uniform random points within "
        "each parameter's declared bounds",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for cache misses (default: auto)",
    )
    p_sweep.add_argument(
        "--seed", type=int, default=0,
        help="sweep seed: sampling + per-point synthesis seeds derive "
        "from it (default 0)",
    )
    p_sweep.add_argument(
        "--engine", type=str, default=None,
        help="solver engine for every run (see `repro engines`)",
    )
    p_sweep.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="artifact cache directory (default: $REPRO_STORE or "
        "~/.cache/repro/store)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache (re-run every point)",
    )
    p_sweep.add_argument(
        "--json", type=str, default="", metavar="FILE",
        help="write the full sweep report (aggregate + runs) as JSON",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the verification service (async job API over the store)",
    )
    p_serve.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 7463; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="worker parallelism / in-flight cap (default 2)",
    )
    p_serve.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_STORE or "
        "~/.cache/repro/store)",
    )
    p_serve.add_argument(
        "--threads", action="store_true",
        help="execute in-process on threads instead of the warm "
        "process pool (tests/smoke runs)",
    )
    p_serve.add_argument(
        "--no-journal", action="store_true",
        help="skip the JSON job journal (no restart recovery)",
    )

    _URL_HELP = "service base URL (default http://127.0.0.1:7463)"

    p_submit = sub.add_parser(
        "submit", help="submit a scenario/family job to a running service"
    )
    p_submit.add_argument(
        "target", metavar="TARGET",
        help="registered family (with --grid/--samples) or scenario name",
    )
    p_submit.add_argument(
        "--grid", nargs="+", metavar="PARAM=SPEC", default=[],
        help="family grid axes (same mini-language as `repro sweep`)",
    )
    p_submit.add_argument(
        "--samples", type=int, default=None,
        help="instead of --grid: N uniform random parameter points",
    )
    p_submit.add_argument("--seed", type=int, default=0, help="job seed")
    p_submit.add_argument(
        "--engine", type=str, default=None,
        help="solver engine for every point",
    )
    p_submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher dispatches first; default 0)",
    )
    p_submit.add_argument(
        "--max-retries", type=int, default=0,
        help="re-run errored points this many times before the job "
        "dead-letters (default 0: fail fast)",
    )
    p_submit.add_argument("--url", type=str, default=None, help=_URL_HELP)
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="give up on --wait after this many seconds",
    )
    p_submit.add_argument(
        "--json", type=str, default="", metavar="FILE",
        help="write the (final, with --wait) job status as JSON",
    )

    p_jobs = sub.add_parser("jobs", help="list a running service's jobs")
    p_jobs.add_argument("--url", type=str, default=None, help=_URL_HELP)
    p_jobs.add_argument(
        "--json", action="store_true", help="emit the job list as JSON"
    )

    p_watch = sub.add_parser(
        "watch", help="stream one job's stage/point progress events"
    )
    p_watch.add_argument("job_id", metavar="JOB")
    p_watch.add_argument("--url", type=str, default=None, help=_URL_HELP)
    p_watch.add_argument(
        "--json", action="store_true",
        help="print raw NDJSON events instead of human-readable lines",
    )

    p_cancel = sub.add_parser("cancel", help="cancel a service job")
    p_cancel.add_argument("job_id", metavar="JOB")
    p_cancel.add_argument("--url", type=str, default=None, help=_URL_HELP)

    p_train = sub.add_parser("train", help="CMA-ES policy search")
    p_train.add_argument("--neurons", type=int, default=10)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--population", type=int, default=24)
    p_train.add_argument("--iterations", type=int, default=30)
    p_train.add_argument("--safe", action="store_true",
                         help="add the simulated safety penalty (future-work mode)")
    p_train.add_argument("--save", type=str, default="")

    p_falsify = sub.add_parser("falsify", help="falsification baseline")
    p_falsify.add_argument("--neurons", type=int, default=10)
    p_falsify.add_argument("--seed", type=int, default=0)
    p_falsify.add_argument("--budget", type=int, default=200)
    p_falsify.add_argument(
        "--method", choices=("random", "cmaes"), default="cmaes"
    )
    p_falsify.add_argument(
        "--unsafe-controller", action="store_true",
        help="flip the controller gains to demo a successful falsification",
    )

    p_table1 = sub.add_parser("table1", help="regenerate Table 1")
    p_table1.add_argument(
        "--widths", type=int, nargs="+", default=None,
        help="hidden-layer widths (default: the paper's 12)",
    )
    p_table1.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    p_table1.add_argument(
        "--workers", type=int, default=1,
        help="parallelize the (width, seed) runs over worker processes",
    )
    p_table1.add_argument(
        "--engine", type=str, default=None,
        help="solver engine for every run (see `repro engines`)",
    )
    p_table1.add_argument(
        "--scenarios", type=str, nargs="+", default=[],
        help="registered scenario names appended as extra table rows "
        "(e.g. bicycle cartpole)",
    )
    p_table1.add_argument(
        "--families", type=str, nargs="+", default=[],
        metavar="FAMILY[:K=V,...]",
        help="family instantiations appended as extra rows "
        "(e.g. bicycle:wheelbase=1.5 dubins:speed=2)",
    )

    p_fig4 = sub.add_parser("figure4", help="regenerate Figure 4 metrics")
    p_fig4.add_argument("--neurons", type=int, default=10)
    p_fig4.add_argument("--seed", type=int, default=0)
    p_fig4.add_argument("--population", type=int, default=28)
    p_fig4.add_argument("--iterations", type=int, default=32)

    p_fig5 = sub.add_parser("figure5", help="regenerate Figure 5 (ASCII)")
    p_fig5.add_argument("--neurons", type=int, default=10)
    p_fig5.add_argument("--seed", type=int, default=0)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzz of the scenario-family corpus"
    )
    p_fuzz.add_argument(
        "--samples", type=int, default=50, help="parameter points to check"
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (reproducible)"
    )
    p_fuzz.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="restrict the rotation (default: every registered family)",
    )
    p_fuzz.add_argument(
        "--engines",
        nargs="+",
        default=None,
        metavar="ENGINE",
        help="engines to cross-check (default: native batched-icp "
        "sharded-icp portfolio)",
    )
    p_fuzz.add_argument(
        "--no-twins",
        action="store_true",
        help="skip the twin expected-verdict invariant",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures at the sampled point without minimising",
    )
    p_fuzz.add_argument(
        "--regressions",
        default="tests/corpus/regressions",
        help="directory reproducers are written to on failure "
        "(default: %(default)s)",
    )
    p_fuzz.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_fuzz.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )

    p_chaos = sub.add_parser(
        "chaos", help="re-run the corpus under injected faults"
    )
    p_chaos.add_argument(
        "--samples", type=int, default=25, help="fault scenarios to run"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="campaign seed (reproducible)"
    )
    p_chaos.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="restrict the rotation (default: every non-stress family)",
    )
    p_chaos.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help="restrict the fault rotation (default: all of them)",
    )
    p_chaos.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        help="per-sample wall-clock budget in seconds (default: 120)",
    )
    p_chaos.add_argument(
        "--reproducers",
        default="tests/resilience/reproducers",
        help="directory failing samples are written to "
        "(default: %(default)s)",
    )
    p_chaos.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_chaos.add_argument(
        "--quiet", action="store_true", help="suppress per-sample progress"
    )
    return parser


def _print_artifact(artifact) -> None:
    print(f"status: {artifact.status}")
    print(f"candidate iterations: {artifact.candidate_iterations}")
    print(
        f"time: LP {artifact.lp_seconds:.2f}s, SMT {artifact.query_seconds:.2f}s, "
        f"other {artifact.other_seconds:.2f}s, total {artifact.total_seconds:.2f}s"
    )
    if artifact.stage_seconds:
        stages = ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in artifact.stage_seconds.items()
        )
        print(f"stages: {stages}")
    if artifact.verified:
        print(f"barrier level: {artifact.level:.6g}")


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .api import list_scenarios

    scenarios = list_scenarios()
    if args.json:
        payload = [
            {
                "name": s.name,
                "description": s.description,
                "dimension": s.dimension,
                "tags": list(s.tags),
                "engine": s.engine,
            }
            for s in scenarios
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(s.name) for s in scenarios)
    for scenario in scenarios:
        tags = f" [{','.join(scenario.tags)}]" if scenario.tags else ""
        print(
            f"{scenario.name:<{width}}  {scenario.dimension}D{tags}  "
            f"{scenario.description}"
        )
    print(f"\n{len(scenarios)} scenarios registered")
    return 0


def _cmd_families(args: argparse.Namespace) -> int:
    import json

    from .api import list_families

    families = list_families()
    if args.json:
        payload = [
            {
                "name": f.name,
                "description": f.description,
                "tags": list(f.tags),
                "parameters": [
                    {
                        "name": p.name,
                        "kind": p.kind,
                        "default": p.default,
                        "low": p.low,
                        "high": p.high,
                        "choices": list(p.choices),
                        "description": p.description,
                    }
                    for p in f.parameters
                ],
            }
            for f in families
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(f.name) for f in families)
    for family in families:
        params = ", ".join(
            f"{p.name}={p.default}" for p in family.parameters
        )
        print(f"{family.name:<{width}}  ({params})  {family.description}")
    print(f"\n{len(families)} families registered")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .api import sweep

    grid = _parse_grid_tokens(args.grid)
    cache: object
    if args.no_cache:
        cache = False
    elif args.store:
        cache = args.store
    else:
        cache = True
    report = sweep(
        args.family,
        grid=grid,
        samples=args.samples,
        seed=args.seed,
        workers=args.workers,
        engine=args.engine,
        cache=cache,
    )
    width = max((len(a.scenario) for a in report.artifacts), default=8)
    for artifact in report.artifacts:
        level = f"level {artifact.level:.6g}" if artifact.verified else ""
        hit = " [cached]" if artifact.cached else ""
        error = f" ({artifact.error})" if artifact.error else ""
        print(
            f"{artifact.scenario:<{width}}  {artifact.status:<14} "
            f"{artifact.total_seconds:7.2f}s  {level}{hit}{error}"
        )
    print()
    print(report.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    # Any errored point fails the invocation — a partially failed sweep
    # must not look green to CI wrappers.
    failed = any(a.status == "error" or a.error for a in report.artifacts)
    return 1 if failed else 0


def _parse_grid_tokens(tokens: "Sequence[str]") -> "dict[str, str] | None":
    """``PARAM=SPEC`` tokens -> grid mapping (None when no tokens)."""
    from .errors import ReproError

    if not tokens:
        return None
    grid: dict[str, str] = {}
    for token in tokens:
        key, eq, value = token.partition("=")
        if not eq or not key.strip() or not value.strip():
            raise ReproError(f"bad --grid token {token!r} (expected PARAM=SPEC)")
        grid[key.strip()] = value.strip()
    return grid


def _service_client(url: "str | None"):
    from .service import DEFAULT_PORT, ServiceClient

    return ServiceClient(url or f"http://127.0.0.1:{DEFAULT_PORT}")


def _print_job_status(status: dict) -> None:
    bits = [
        f"{status['id']}  {status['state']:<9}",
        f"{status['done_points']}/{status['total_points']} points",
        f"{status['cached_points']} cached",
        f"{status['dispatched']} dispatched",
    ]
    if status.get("coalesced"):
        bits.append(f"{status['coalesced']} coalesced")
    if status.get("retries") or status.get("max_retries"):
        bits.append(
            f"{status.get('retries', 0)}/{status.get('max_retries', 0)} retries"
        )
    if status.get("error"):
        bits.append(f"error: {status['error']}")
    print("  ".join(bits))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import DEFAULT_PORT, EventBus, Scheduler, ServiceServer
    from .store import ArtifactStore

    store = ArtifactStore(args.store) if args.store else ArtifactStore()
    scheduler = Scheduler(
        store,
        pool=False if args.threads else True,
        workers=args.workers,
        events=EventBus(),
        journal=None if args.no_journal else True,
    )
    recovered = scheduler.recover()
    if recovered:
        print(f"recovered {len(recovered)} unfinished job(s) from the journal")
    server = ServiceServer(
        scheduler,
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
    )

    async def main() -> None:
        await server.start()
        print(
            f"repro service listening on http://{server.host}:{server.port} "
            f"(store {store.root}, {scheduler.workers} workers)",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        scheduler.shutdown()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args.url)
    status = client.submit(
        args.target,
        grid=_parse_grid_tokens(args.grid),
        samples=args.samples,
        seed=args.seed,
        engine=args.engine,
        priority=args.priority,
        max_retries=args.max_retries,
    )
    _print_job_status(status)
    if args.wait:
        status = client.wait(status["id"], timeout=args.timeout)
        _print_job_status(status)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(status, handle, indent=2, sort_keys=True)
        print(f"status written to {args.json}")
    if args.wait:
        return 0 if status["state"] == "DONE" else 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    jobs = _service_client(args.url).jobs()
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for status in jobs:
        _print_job_status(status)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args.url)
    final_state = None
    for event in client.stream(args.job_id):
        if args.json:
            print(json.dumps(event, sort_keys=True), flush=True)
        elif event.get("type") == "stage":
            if event.get("kind") == "end":
                print(
                    f"  {event.get('point')}: {event.get('stage')} "
                    f"({event.get('seconds', 0.0):.2f}s)",
                    flush=True,
                )
        elif event.get("type") == "point":
            origin = "cache" if event.get("cached") else "worker"
            print(
                f"point {event.get('index')} {event.get('point')}: "
                f"{event.get('status')} [{origin}]",
                flush=True,
            )
        elif event.get("type") == "job":
            final_state = event.get("state")
            print(f"job {event.get('job')}: {final_state}", flush=True)
    return 0 if final_state == "DONE" else 1


def _cmd_cancel(args: argparse.Namespace) -> int:
    status = _service_client(args.url).cancel(args.job_id)
    _print_job_status(status)
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    import json

    from .engine import list_engines

    engines = list_engines()
    if args.json:
        print(json.dumps([e.describe() for e in engines], indent=2))
        return 0
    width = max(len(e.name) for e in engines)
    for engine in engines:
        tags = f" [{','.join(engine.tags)}]" if engine.tags else ""
        print(f"{engine.name:<{width}}{tags}  {engine.description}")
        available, reason = engine.availability()
        if reason:
            marker = "" if available else "UNAVAILABLE: "
            print(f"{'':<{width}}  ({marker}{reason})")
    print(f"\n{len(engines)} engines registered")
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from .solvers import probe_all

    infos = probe_all(refresh=args.refresh)
    if args.json:
        # A list of entries, like `engines --json`.
        print(json.dumps(
            [dataclasses.asdict(infos[name]) for name in sorted(infos)],
            indent=2,
            sort_keys=True,
        ))
        return 0
    width = max(len(name) for name in infos) if infos else 0
    for name, info in infos.items():
        if info.available:
            print(f"{name:<{width}}  available  {info.version}  ({info.command})")
        else:
            print(f"{name:<{width}}  missing    {info.reason}")
    found = sum(1 for info in infos.values() if info.available)
    print(f"\n{found}/{len(infos)} external solvers available "
          "(set REPRO_Z3 / REPRO_DREAL to point at binaries)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import dataclasses

    from .api import dubins_scenario, get_scenario, run
    from .barrier import SynthesisConfig
    from .nn import load_network
    from .smt import IcpConfig

    if args.scenario:
        # Start from the scenario's bundled config (it may be load-bearing)
        # and apply only the flags the user actually passed.
        scenario = get_scenario(args.scenario)
        config = scenario.config
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.gamma is not None:
            overrides["gamma"] = args.gamma
        icp_overrides = {}
        if args.delta is not None:
            icp_overrides["delta"] = args.delta
        if args.solver_timeout is not None:
            icp_overrides["solver_timeout"] = args.solver_timeout
        if args.shards is not None:
            icp_overrides["shards"] = args.shards
        if icp_overrides:
            overrides["icp"] = dataclasses.replace(config.icp, **icp_overrides)
        if overrides:
            config = dataclasses.replace(config, **overrides)
    else:
        seed = 0 if args.seed is None else args.seed
        if args.controller:
            scenario = dubins_scenario(network=load_network(args.controller))
        else:
            scenario = dubins_scenario(
                hidden_neurons=args.neurons, trained=args.trained, seed=seed
            )
        config = SynthesisConfig(
            seed=seed,
            gamma=1e-6 if args.gamma is None else args.gamma,
            icp=IcpConfig(
                delta=1e-3 if args.delta is None else args.delta,
                solver_timeout=args.solver_timeout,
                shards=args.shards,
            ),
        )
    artifact = run(scenario, config=config, engine=args.engine)
    _print_artifact(artifact)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(artifact.to_json(indent=2))
        print(f"artifact written to {args.json}")
    return 0 if artifact.verified else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .perf import format_profile, profile_scenario

    report = profile_scenario(
        args.scenario,
        engine=args.engine,
        repeats=args.repeats,
        compare=args.compare,
        kernels=not args.no_kernels,
        shards=args.shards,
    )
    print(format_profile(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"profile written to {args.json}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .api import run_batch, scenario_names

    names = list(args.names) if args.names else list(scenario_names())
    artifacts = run_batch(
        names, workers=args.workers, seed=args.seed, engine=args.engine
    )
    width = max(len(a.scenario) for a in artifacts)
    for artifact in artifacts:
        level = f"level {artifact.level:.6g}" if artifact.verified else ""
        error = f" ({artifact.error})" if artifact.error else ""
        print(
            f"{artifact.scenario:<{width}}  {artifact.status:<14} "
            f"{artifact.total_seconds:7.2f}s  {level}{error}"
        )
    if args.json:
        payload = json.dumps([a.to_dict() for a in artifacts], indent=2)
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"artifacts written to {args.json}")
    # Errors always fail the invocation; unverified-but-clean runs also
    # exit 1 (historical contract: batch means "verify everything").
    if any(a.status == "error" or a.error for a in artifacts):
        return 1
    return 0 if all(a.verified for a in artifacts) else 1


def _cmd_train(args: argparse.Namespace) -> int:
    from .learning import train_paper_controller
    from .learning.safe_train import train_safe_controller
    from .nn import save_network

    if args.safe:
        result = train_safe_controller(
            hidden_neurons=args.neurons,
            seed=args.seed,
            population_size=args.population,
            max_iterations=args.iterations,
        )
        network = result.network
        print(
            f"tracking cost {result.tracking_cost:.1f}, "
            f"safety penalty {result.safety_penalty:.1f}, "
            f"verified: {result.verified}"
        )
    else:
        outcome = train_paper_controller(
            hidden_neurons=args.neurons,
            seed=args.seed,
            population_size=args.population,
            max_iterations=args.iterations,
        )
        network = outcome.network
        history = outcome.cmaes.history
        print(f"cost J: {history[0]:.1f} -> {history[-1]:.1f}")
    if args.save:
        save_network(network, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_falsify(args: argparse.Namespace) -> int:
    from .api import paper_problem
    from .barrier.falsify import falsify_cmaes, falsify_random
    from .learning import proportional_controller_network

    gain = -1.0 if args.unsafe_controller else 1.0
    network = proportional_controller_network(
        args.neurons, d_gain=0.6 * gain, theta_gain=2.0 * gain
    )
    problem = paper_problem(network)
    falsifier = falsify_cmaes if args.method == "cmaes" else falsify_random
    result = falsifier(
        problem.system,
        problem.initial_set,
        problem.unsafe_set,
        budget=args.budget,
        seed=args.seed,
    )
    print(result)
    if result.falsified:
        print(f"counterexample initial state: {result.best_initial_state}")
        return 0
    print("no counterexample found — run `repro verify` for an actual proof")
    return 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import PAPER_NEURON_COUNTS, format_table1, run_table1

    widths = tuple(args.widths) if args.widths else PAPER_NEURON_COUNTS
    rows = run_table1(
        neuron_counts=widths,
        seeds=tuple(args.seeds),
        workers=args.workers,
        engine=args.engine,
        scenarios=tuple(args.scenarios),
        families=tuple(args.families),
    )
    print(format_table1(rows))
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .experiments import format_figure4, run_figure4

    data = run_figure4(
        hidden_neurons=args.neurons,
        seed=args.seed,
        population_size=args.population,
        max_iterations=args.iterations,
        snapshot_iterations=(5, args.iterations // 2),
    )
    print(format_figure4(data))
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from .experiments import format_figure5, render_ascii, run_figure5

    data = run_figure5(hidden_neurons=args.neurons, seed=args.seed)
    print(format_figure5(data))
    print()
    print(render_ascii(data))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json as json_module

    from .corpus import DEFAULT_ENGINES, fuzz

    progress = None if (args.quiet or args.json) else print
    report = fuzz(
        samples=args.samples,
        seed=args.seed,
        families=tuple(args.families) if args.families else None,
        engines=tuple(args.engines) if args.engines else DEFAULT_ENGINES,
        twins=not args.no_twins,
        shrink=not args.no_shrink,
        regressions_dir=args.regressions,
        progress=progress,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as json_module

    from .resilience.chaos import DEFAULT_HARD_TIMEOUT, chaos

    progress = None if (args.quiet or args.json) else print
    report = chaos(
        samples=args.samples,
        seed=args.seed,
        families=tuple(args.families) if args.families else None,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        hard_timeout=(
            args.hard_timeout
            if args.hard_timeout is not None
            else DEFAULT_HARD_TIMEOUT
        ),
        reproducers_dir=args.reproducers,
        progress=progress,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


_COMMANDS = {
    "scenarios": _cmd_scenarios,
    "families": _cmd_families,
    "engines": _cmd_engines,
    "solvers": _cmd_solvers,
    "verify": _cmd_verify,
    "profile": _cmd_profile,
    "batch": _cmd_batch,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "watch": _cmd_watch,
    "cancel": _cmd_cancel,
    "train": _cmd_train,
    "falsify": _cmd_falsify,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "fuzz": _cmd_fuzz,
    "chaos": _cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
