"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table, a figure,
or an ablation) and both prints it and writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  Run with ``pytest benchmarks/ --benchmark-only -s`` to watch
live.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """emit(name, text): print an artifact and persist it."""

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====")
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
