"""Scenario objects and the global registry."""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    Scenario,
    dubins_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
    unregister_scenario,
)
from repro.barrier import (
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    VerificationProblem,
)
from repro.dynamics import library
from repro.errors import ReproError
from repro.smt import IcpConfig


BUILTINS = ("dubins", "linear", "double-integrator", "pendulum", "vanderpol")


class TestBuiltinRegistry:
    def test_at_least_four_scenarios(self):
        assert len(list_scenarios()) >= 4

    @pytest.mark.parametrize("name", BUILTINS)
    def test_builtin_registered(self, name):
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.description

    def test_names_sorted(self):
        names = scenario_names()
        assert list(names) == sorted(names)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ReproError, match="linear"):
            get_scenario("no-such-scenario")

    @pytest.mark.parametrize("name", ("linear", "vanderpol", "double-integrator"))
    def test_problem_builds(self, name):
        problem = get_scenario(name).problem()
        assert isinstance(problem, VerificationProblem)
        assert problem.system.dimension == get_scenario(name).dimension

    def test_builtins_are_picklable(self):
        """run_batch ships scenarios into worker processes."""
        for scenario in list_scenarios():
            if scenario.name in BUILTINS:
                assert pickle.loads(pickle.dumps(scenario)).name == scenario.name


class TestLibraryCoverage:
    """Every library plant is importable from repro.dynamics and backs a
    registered scenario (ISSUE satellite)."""

    def test_all_exports_importable(self):
        import repro.dynamics as dynamics

        for name in library.__all__:
            assert hasattr(dynamics, name), name

    def test_every_library_plant_covered(self):
        sources = {
            "stable_linear_system": "linear",
            "linear_plant": "double-integrator",
            "inverted_pendulum_plant": "pendulum",
            "van_der_pol_system": "vanderpol",
        }
        for scenario_name in sources.values():
            system = get_scenario(scenario_name).system_factory()
            assert system.dimension == 2


class TestRegistryRoundTrip:
    def test_register_get_unregister(self):
        scenario = Scenario(
            name="registry-test",
            description="temp",
            system_factory=library.van_der_pol_system,
            initial_set=Rectangle([-0.1, -0.1], [0.1, 0.1]),
            unsafe_set=RectangleComplement(Rectangle([-1.0, -1.0], [1.0, 1.0])),
        )
        try:
            assert register_scenario(scenario) is scenario
            assert get_scenario("registry-test") is scenario
            assert "registry-test" in scenario_names()
        finally:
            unregister_scenario("registry-test")
        assert "registry-test" not in scenario_names()

    def test_duplicate_name_rejected(self):
        scenario = get_scenario("linear")
        with pytest.raises(ReproError, match="already registered"):
            register_scenario(scenario)
        # replace=True is the explicit override
        register_scenario(scenario, replace=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            Scenario(
                name="",
                description="x",
                system_factory=library.van_der_pol_system,
                initial_set=Rectangle([-0.1], [0.1]),
                unsafe_set=RectangleComplement(Rectangle([-1.0], [1.0])),
            )

    def test_with_config(self):
        scenario = get_scenario("linear")
        tweaked = scenario.with_config(SynthesisConfig(seed=7))
        assert tweaked.config.seed == 7
        assert tweaked.name == scenario.name
        assert scenario.config.seed == 0  # original untouched


class TestDubinsScenarioFactory:
    def test_width_parameterized(self):
        scenario = dubins_scenario(hidden_neurons=4)
        assert "4" in scenario.name
        system = scenario.system_factory()
        assert system.dimension == 2

    def test_custom_network(self, small_controller):
        scenario = dubins_scenario(network=small_controller)
        assert scenario.name == "dubins-custom"
        assert scenario.system_factory().dimension == 2


class TestConfigSerialization:
    def test_round_trip_defaults(self):
        config = SynthesisConfig()
        data = synthesis_config_to_dict(config)
        assert data["lp"]["max_points"] == config.lp.max_points
        rebuilt = synthesis_config_from_dict(data)
        assert rebuilt == config

    def test_round_trip_custom(self):
        config = SynthesisConfig(
            seed=3, gamma=1e-5, num_seed_traces=7, icp=IcpConfig(delta=1e-2)
        )
        rebuilt = synthesis_config_from_dict(synthesis_config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.icp.delta == 1e-2
