"""Generator-function templates.

The paper assumes the generator function ``W(x)`` comes from a template
with unknown coefficients (Section 3, "suitable templates, such as
Sum-of-Squares polynomials").  A template provides:

* numeric feature maps — values and gradients of each basis function at
  sample points, used to assemble the LP;
* symbolic reconstruction — ``W`` and ``∇W`` as expressions once the LP
  has fixed the coefficients, used by the SMT queries;
* for quadratic templates, the ``(P, q)`` matrix form used by the
  closed-form level-set geometry (the set ``{W <= l}`` is an ellipsoid).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..expr import Const, Expr, sum_expr, var

__all__ = ["GeneratorTemplate", "QuadraticTemplate", "PolynomialTemplate"]


class GeneratorTemplate:
    """Base class: a finite basis ``W(x) = sum_j c_j * phi_j(x)``."""

    #: exponent tuples, one per basis function (set by subclasses)
    monomials: list[tuple[int, ...]]
    dimension: int

    @property
    def basis_size(self) -> int:
        """Number of unknown coefficients."""
        return len(self.monomials)

    @property
    def exponent_matrix(self) -> np.ndarray:
        """Monomial exponents as a ``(k, n)`` integer matrix (cached).

        Keyed on the monomial tuple itself, so mutating the public
        ``monomials`` list between calls invalidates correctly.
        """
        token = tuple(self.monomials)
        cached = getattr(self, "_exponent_cache", None)
        if cached is None or cached[0] != token:
            cached = (token, np.asarray(self.monomials, dtype=np.int64))
            self._exponent_cache = cached
        return cached[1]

    # ------------------------------------------------------------------
    # Numeric features
    # ------------------------------------------------------------------
    # Both feature maps are vectorized over all sample states per basis
    # function, with the per-monomial exponent vectors (and the reduced
    # derivative exponents) precomputed once instead of re-materialized
    # every call.  The arithmetic is exactly the historical per-monomial
    # form — ``np.prod(points ** expo, axis=1)`` — which NumPy evaluates
    # through its scalar-integer-exponent fast path (``x**2`` is
    # ``x*x``); a single broadcast power over an exponent *matrix* would
    # skip that path and drift by 1 ulp, so features stay loop-shaped on
    # purpose (cross-checked bitwise in tests/barrier).

    def features(self, points: np.ndarray) -> np.ndarray:
        """Basis values ``phi_j(x_i)``, shape ``(m, k)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        self._check_points(points)
        exponents = self.exponent_matrix  # (k, n)
        columns = [np.prod(points**expo, axis=1) for expo in exponents]
        return np.stack(columns, axis=1)

    def gradient_features(self, points: np.ndarray) -> np.ndarray:
        """Basis gradients ``∂phi_j/∂x_d (x_i)``, shape ``(m, n, k)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        self._check_points(points)
        m, n = points.shape
        grads = np.zeros((m, n, self.basis_size))
        for j, d, factor, reduced in self._gradient_terms(n):
            grads[:, d, j] = factor * np.prod(points**reduced, axis=1)
        return grads

    def _gradient_terms(self, n: int) -> list[tuple[int, int, int, np.ndarray]]:
        """Nonzero ``(j, d, expo_d, reduced-exponents)`` terms (cached).

        Keyed on ``(n, monomials)`` so edits to the public ``monomials``
        list between calls never serve stale derivative exponents.
        """
        key = (n, tuple(self.monomials))
        cached = getattr(self, "_gradient_term_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        terms = []
        for j, expo in enumerate(self.monomials):
            for d in range(n):
                if expo[d] == 0:
                    continue
                reduced = list(expo)
                reduced[d] -= 1
                terms.append((j, d, expo[d], np.asarray(reduced)))
        self._gradient_term_cache = (key, terms)
        return terms

    def evaluate(self, coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
        """``W(x_i)`` for fixed coefficients."""
        return self.features(points) @ np.asarray(coefficients, dtype=float)

    def gradient(self, coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
        """``∇W(x_i)``, shape ``(m, n)``."""
        return self.gradient_features(points) @ np.asarray(coefficients, dtype=float)

    # ------------------------------------------------------------------
    # Symbolic reconstruction
    # ------------------------------------------------------------------
    def build_expression(
        self, coefficients: np.ndarray, state_names: Sequence[str]
    ) -> Expr:
        """``W`` as an expression over the named variables."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self.basis_size,):
            raise ReproError(
                f"expected {self.basis_size} coefficients, got {coefficients.shape}"
            )
        if len(state_names) != self.dimension:
            raise ReproError(
                f"{len(state_names)} names for a {self.dimension}-D template"
            )
        variables = [var(name) for name in state_names]
        terms = []
        for coeff, expo in zip(coefficients, self.monomials):
            if coeff == 0.0:
                continue
            factors: Expr = Const(float(coeff))
            for x, power in zip(variables, expo):
                if power == 1:
                    factors = factors * x
                elif power > 1:
                    factors = factors * x**power
            terms.append(factors)
        return sum_expr(terms) if terms else Const(0.0)

    def _check_points(self, points: np.ndarray) -> None:
        if points.shape[1] != self.dimension:
            raise ReproError(
                f"points have {points.shape[1]} columns, template is "
                f"{self.dimension}-D"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} dim={self.dimension} basis={self.basis_size}>"


class QuadraticTemplate(GeneratorTemplate):
    """Homogeneous quadratic ``W(x) = x^T P x`` (optionally + ``q^T x``).

    The paper's case study uses the pure quadratic form, whose level
    sets are origin-centred ellipsoids; ``include_linear=True`` adds the
    linear terms for systems whose invariant sets are offset.
    """

    def __init__(self, dimension: int, include_linear: bool = False):
        if dimension < 1:
            raise ReproError("dimension must be >= 1")
        self.dimension = dimension
        self.include_linear = include_linear
        self.monomials = []
        for i in range(dimension):
            for j in range(i, dimension):
                expo = [0] * dimension
                expo[i] += 1
                expo[j] += 1
                self.monomials.append(tuple(expo))
        if include_linear:
            for i in range(dimension):
                expo = [0] * dimension
                expo[i] = 1
                self.monomials.append(tuple(expo))

    def p_matrix(self, coefficients: np.ndarray) -> np.ndarray:
        """Symmetric ``P`` with ``x^T P x`` matching the quadratic part."""
        coefficients = np.asarray(coefficients, dtype=float)
        p = np.zeros((self.dimension, self.dimension))
        index = 0
        for i in range(self.dimension):
            for j in range(i, self.dimension):
                if i == j:
                    p[i, i] = coefficients[index]
                else:
                    p[i, j] = p[j, i] = 0.5 * coefficients[index]
                index += 1
        return p

    def q_vector(self, coefficients: np.ndarray) -> np.ndarray:
        """Linear-term vector ``q`` (zeros for the pure quadratic form)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if not self.include_linear:
            return np.zeros(self.dimension)
        return coefficients[-self.dimension :].copy()

    @property
    def quadratic_size(self) -> int:
        """Number of quadratic basis terms."""
        return self.dimension * (self.dimension + 1) // 2


class PolynomialTemplate(GeneratorTemplate):
    """All monomials of total degree between ``min_degree`` and ``max_degree``.

    The default skips the constant term (degree 0): barrier generator
    functions are only meaningful up to the level-set offset, and a free
    constant makes the LP degenerate.
    """

    def __init__(self, dimension: int, max_degree: int, min_degree: int = 1):
        if dimension < 1:
            raise ReproError("dimension must be >= 1")
        if max_degree < min_degree or min_degree < 0:
            raise ReproError(
                f"invalid degree range [{min_degree}, {max_degree}]"
            )
        self.dimension = dimension
        self.max_degree = max_degree
        self.min_degree = min_degree
        self.monomials = [
            expo
            for expo in itertools.product(range(max_degree + 1), repeat=dimension)
            if min_degree <= sum(expo) <= max_degree
        ]
        # Deterministic order: by total degree, then lexicographic.
        self.monomials.sort(key=lambda e: (sum(e), e))
