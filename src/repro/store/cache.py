"""Content-addressed on-disk cache for :class:`RunArtifact` records.

Every verification run has a deterministic *fingerprint*: what was
verified (the scenario's ``(family, params)`` identity, or its name +
sets + factory for hand-built scenarios), on which engine, under which
flattened :class:`~repro.barrier.SynthesisConfig` (the synthesis seed
lives inside the config).  :func:`run_key` hashes the canonical JSON of
that fingerprint with sha256; the :class:`ArtifactStore` keeps one
artifact JSON file per key, sharded by the first two hex digits::

    <root>/ab/ab3f...e2.json

Keys are content addresses, so a hit is exactly "this run already
happened": :func:`repro.api.run` consults the store before solving and
writes the artifact after, and :func:`repro.api.sweep` skips whole
shards of a parameter grid on re-invocation.  Stored files are the
artifact's canonical ``to_json()`` bytes — a cache hit round-trips to
byte-identical JSON versus a fresh solve.  Only *definite* outcomes are
stored: ``inconclusive`` runs exhausted a (possibly wall-clock) solver
budget, which is machine- and load-dependent, so they re-run every
time instead of freezing a transient "unknown".

Configuration
-------------
``REPRO_STORE``
    Overrides the default store root (``~/.cache/repro/store``, honoring
    ``XDG_CACHE_HOME``).
``REPRO_CACHE``
    Opt-in for :func:`repro.api.run`/``run_batch`` when no ``cache``
    argument is given: unset/``0``/empty disables, ``1`` enables at the
    default root, any other value is used as the root path.
    ``repro sweep`` caches by default regardless.

Writes are atomic (temp file + :func:`os.replace`), so concurrent sweep
workers may race on the same key and the loser simply overwrites the
winner with identical bytes.  A corrupt entry (readable bytes that no
longer parse as an artifact) is *quarantined*: renamed to
``<key>.corrupt`` beside its shard so the miss re-runs cleanly while a
service operator can still see — and inspect — cache rot via
:meth:`ArtifactStore.stats`.  Unreadable entries (I/O errors) are plain
misses.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..api.runner import RunArtifact
    from ..api.scenario import Scenario
    from ..barrier import SynthesisConfig

__all__ = [
    "ArtifactStore",
    "CACHE_ENV",
    "STORE_ENV",
    "StoreStats",
    "default_store_root",
    "resolve_store",
    "run_fingerprint",
    "run_key",
]

#: env var overriding the default store root
STORE_ENV = "REPRO_STORE"
#: env var opting runs into the cache when no ``cache=`` argument is given
CACHE_ENV = "REPRO_CACHE"

#: fingerprint schema version (bump on incompatible key changes)
FINGERPRINT_VERSION = 1

#: ``.tmp`` leftovers older than this are treated as crashed writers'
#: debris and swept by :meth:`ArtifactStore.collect_garbage` (and by
#: ``put`` on the shard it touches); young tmp files may belong to a
#: live concurrent writer and are left alone.
TMP_GC_SECONDS = 3600.0


def default_store_root() -> Path:
    """The store directory used when none is given explicitly.

    ``$REPRO_STORE`` if set, else ``$XDG_CACHE_HOME/repro/store``
    (``~/.cache/repro/store`` when XDG is unset).
    """
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME") or "~/.cache"
    return Path(cache_home).expanduser() / "repro" / "store"


def _json_safe(value: object, depth: int = 8) -> object:
    """Best-effort deterministic JSON view of a fingerprint component.

    Rich objects (e.g. a FeedforwardNetwork handed to a factory partial)
    must contribute their *content*, not just their type — two different
    controllers with the same scenario name must not collide on one key.
    Picklable objects contribute a digest of their pickle bytes (content-
    deterministic within an environment; a cross-version difference only
    costs a cache miss, never a collision); unpicklable ones (activation
    lambdas make networks unpicklable) are traversed structurally through
    their ``__dict__``/``__slots__`` state, bottoming out at the type
    name once ``depth`` is exhausted.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    type_name = f"{type(value).__module__}.{type(value).__qualname__}"
    if depth <= 0:
        return f"<{type_name}>"
    if isinstance(value, (list, tuple)):
        return [_json_safe(v, depth - 1) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v, depth - 1) for k, v in value.items()}
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _json_safe(tolist(), depth - 1)
    with contextlib.suppress(Exception):
        return {
            "type": type_name,
            "pickle_sha256": hashlib.sha256(pickle.dumps(value)).hexdigest(),
        }
    state: dict = {}
    if getattr(value, "__dict__", None):
        state = dict(vars(value))
    else:
        for slot in getattr(type(value), "__slots__", ()):
            if hasattr(value, slot):
                state[slot] = getattr(value, slot)
    if state:
        return {
            "type": type_name,
            "state": {
                k: _json_safe(v, depth - 1) for k, v in sorted(state.items())
            },
        }
    return f"<{type_name}>"


def _callable_fingerprint(fn: object) -> object:
    """Deterministic identity of a system factory.

    Module-level functions hash to ``module.qualname``;
    :func:`functools.partial` recurses into its func/args/kwargs, so the
    builtin family factories (partials over module functions) fingerprint
    their parameter values too.
    """
    if isinstance(fn, functools.partial):
        return {
            "partial": _callable_fingerprint(fn.func),
            "args": [_json_safe(a) for a in fn.args],
            "kwargs": {k: _json_safe(v) for k, v in sorted(fn.keywords.items())},
        }
    module = getattr(fn, "__module__", type(fn).__module__)
    qualname = getattr(fn, "__qualname__", type(fn).__qualname__)
    return f"{module}.{qualname}"


def _set_fingerprint(region: object) -> object:
    """Bounds-based identity of an initial/unsafe/domain set."""
    if region is None:
        return None
    rectangle = getattr(region, "safe_rectangle", region)
    lower = getattr(rectangle, "lower", None)
    upper = getattr(rectangle, "upper", None)
    if lower is None or upper is None:
        return _json_safe(region)
    return {
        "kind": type(region).__name__,
        "lower": [float(v) for v in lower],
        "upper": [float(v) for v in upper],
    }


def run_fingerprint(
    scenario: "Scenario",
    config: "SynthesisConfig",
    engine_name: str,
    solvers: "str | None" = None,
) -> dict:
    """The canonical plain-data identity of one verification run.

    Family-instantiated scenarios are identified by ``(family, params)``
    — the strongest key, independent of how the scenario object was
    built.  Hand-built scenarios fall back to name + set bounds +
    factory fingerprint.  The flattened config carries the synthesis
    seed, so changing *any* knob (seed, delta, gamma, budgets, engine,
    parameters) changes the key.

    ``solvers`` is the external-solver fingerprint
    (:func:`repro.solvers.solver_fingerprint`) and only participates
    when non-empty: a ``portfolio`` run whose verdicts came from an
    external binary is keyed by that binary's identity + version, while
    a run the native racer decided alone keys identically to having no
    externals installed at all.
    """
    from ..api.scenario import synthesis_config_to_dict

    if scenario.family:
        identity: dict = {
            "family": scenario.family,
            "params": {k: _json_safe(v) for k, v in scenario.family_params},
        }
    else:
        identity = {
            "scenario": scenario.name,
            "factory": _callable_fingerprint(scenario.system_factory),
            "initial_set": _set_fingerprint(scenario.initial_set),
            "unsafe_set": _set_fingerprint(scenario.unsafe_set),
            "domain": _set_fingerprint(scenario.domain),
        }
    fingerprint = {
        "version": FINGERPRINT_VERSION,
        "identity": identity,
        "engine": engine_name,
        "config": _json_safe(synthesis_config_to_dict(config)),
    }
    if solvers:
        fingerprint["solvers"] = solvers
    return fingerprint


def run_key(
    scenario: "Scenario",
    config: "SynthesisConfig",
    engine_name: str,
    solvers: "str | None" = None,
) -> str:
    """sha256 hex digest of the canonical run fingerprint."""
    payload = json.dumps(
        run_fingerprint(scenario, config, engine_name, solvers=solvers),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store telemetry.

    ``artifacts``/``bytes`` count live entries; ``corrupt`` counts
    quarantined ``<key>.corrupt`` files — nonzero means cache rot
    (torn writes, disk errors, incompatible artifact schemas) that an
    operator should look at.
    """

    artifacts: int
    bytes: int
    corrupt: int = 0


class ArtifactStore:
    """A content-addressed directory of verification artifacts.

    Parameters
    ----------
    root:
        Store directory; created lazily on first write.  ``None`` uses
        :func:`default_store_root`.

    Instances hold only the root path, so they pickle cheaply into sweep
    worker processes; all state lives on disk.
    """

    def __init__(self, root: "str | Path | None" = None):
        self.root = Path(root).expanduser() if root is not None else default_store_root()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArtifactStore) and self.root == other.root

    def path_for(self, key: str) -> Path:
        """On-disk path of a key (two-hex-digit shard directories)."""
        if len(key) < 3:
            raise ValueError(f"malformed store key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> "RunArtifact | None":
        """The cached artifact for ``key``, or None on a miss.

        An entry that reads but no longer parses is quarantined —
        renamed to ``<key>.corrupt`` and counted by :meth:`stats` — so
        rot is visible to operators instead of silently re-running
        forever; unreadable entries (I/O errors) are plain misses.
        """
        from ..api.runner import RunArtifact
        from ..resilience import faults

        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        action = faults.fire("store.read", key[:8])
        if action is not None:
            if action.kind == "error":
                raise faults.InjectedFault(f"injected store read failure ({key[:8]})")
            text = action.payload or text[: len(text) // 2]
        try:
            return RunArtifact.from_json(text)
        except (ValueError, TypeError, KeyError):
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside as ``<key>.corrupt`` (best effort).

        ``os.replace`` keeps this atomic; a concurrent reader either
        still sees the corrupt file (and loses the rename race
        harmlessly) or a clean miss.
        """
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))

    def put(self, key: str, artifact: "RunArtifact") -> Path:
        """Write an artifact under ``key`` (atomic; returns the path).

        A writer that dies between the tmp write and the rename leaves a
        ``.tmp`` file and *no* entry — readers can never observe a
        partial artifact.  The leftover is swept by
        :meth:`collect_garbage`, which ``put`` runs (stale files only)
        on the shard it is about to write.
        """
        from ..resilience import faults

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._sweep_tmp(path.parent, time.time() - TMP_GC_SECONDS)
        payload = artifact.to_json(indent=2)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        action = faults.fire("store.write", key[:8])
        torn = action is not None and action.kind == "torn"
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload[: len(payload) // 2] if torn else payload)
            if action is not None:
                # Simulated crash between tmp-write and rename: the torn
                # kind leaves its half-written tmp behind exactly as a
                # SIGKILLed writer would (skipping the unlink below).
                raise faults.InjectedFault(
                    f"injected store write crash ({key[:8]})"
                )
            os.replace(tmp, path)
        except BaseException:
            if not torn:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
            raise
        return path

    def _sweep_tmp(self, shard: Path, cutoff: float) -> int:
        """Unlink ``.tmp`` leftovers in ``shard`` older than ``cutoff``."""
        removed = 0
        with contextlib.suppress(OSError):
            for stray in shard.glob(".*.tmp"):
                try:
                    if stray.stat().st_mtime <= cutoff:
                        stray.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed

    def collect_garbage(self, max_age_seconds: "float | None" = None) -> int:
        """Sweep ``.tmp`` files left by crashed mid-write processes.

        Only files older than ``max_age_seconds`` (default
        :data:`TMP_GC_SECONDS`) go — an in-flight concurrent writer's
        fresh tmp file is never touched.  Returns the number removed.
        """
        ttl = TMP_GC_SECONDS if max_age_seconds is None else max_age_seconds
        cutoff = time.time() - ttl
        removed = 0
        if not self.root.is_dir():
            return 0
        for shard in self.root.iterdir():
            if shard.is_dir():
                removed += self._sweep_tmp(shard, cutoff)
        return removed

    def keys(self) -> Iterator[str]:
        """Iterate over every stored key."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def stats(self) -> StoreStats:
        """Entry count, total bytes, and quarantined-entry count."""
        artifacts = 0
        total = 0
        for key in self.keys():
            try:
                total += self.path_for(key).stat().st_size
            except OSError:
                continue
            artifacts += 1
        corrupt = 0
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    corrupt += sum(1 for _ in shard.glob("*.corrupt"))
        return StoreStats(artifacts=artifacts, bytes=total, corrupt=corrupt)

    def clear(self) -> int:
        """Delete every entry (including quarantined ones); returns how
        many live artifacts were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                continue
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    for stray in shard.glob("*.corrupt"):
                        with contextlib.suppress(OSError):
                            stray.unlink()
        return removed


def resolve_store(
    cache: "ArtifactStore | str | Path | bool | None",
) -> "ArtifactStore | None":
    """Normalize a ``cache`` argument to a store (or None = disabled).

    ``None`` defers to the ``REPRO_CACHE`` env var (see module
    docstring); ``True``/``False`` force the default store on/off; a
    path-like selects a store rooted there; a store passes through.
    """
    if cache is None:
        env = os.environ.get(CACHE_ENV, "").strip()
        if not env or env == "0":
            return None
        if env == "1":
            return ArtifactStore()
        return ArtifactStore(env)
    if cache is False:
        return None
    if cache is True:
        return ArtifactStore()
    if isinstance(cache, ArtifactStore):
        return cache
    return ArtifactStore(cache)
