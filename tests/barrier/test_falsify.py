"""Falsification-baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    FalsificationResult,
    falsify_cmaes,
    falsify_random,
    trajectory_robustness,
)
from repro.dynamics import error_dynamics_system
from repro.errors import ReproError
from repro.experiments import paper_initial_set, paper_unsafe_set
from repro.learning import proportional_controller_network


@pytest.fixture
def safe_problem():
    net = proportional_controller_network(4)
    return error_dynamics_system(net), paper_initial_set(), paper_unsafe_set()


@pytest.fixture
def unsafe_problem():
    net = proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)
    return error_dynamics_system(net), paper_initial_set(), paper_unsafe_set()


class TestRobustness:
    def test_positive_for_safe_trajectory(self, safe_problem):
        system, x0, unsafe = safe_problem
        rob = trajectory_robustness(
            system, [0.5, 0.1], unsafe.safe_rectangle, 10.0, 0.05
        )
        assert rob > 0.0

    def test_negative_for_escaping_trajectory(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        rob = trajectory_robustness(
            system, [1.0, 0.15], unsafe.safe_rectangle, 20.0, 0.05
        )
        assert rob < 0.0

    def test_monotone_in_start_distance(self, safe_problem):
        """Starting nearer the envelope leaves less margin."""
        system, _, unsafe = safe_problem
        near = trajectory_robustness(
            system, [4.0, 0.0], unsafe.safe_rectangle, 10.0, 0.05
        )
        far = trajectory_robustness(
            system, [0.5, 0.0], unsafe.safe_rectangle, 10.0, 0.05
        )
        assert near < far


class TestFalsifiers:
    def test_random_does_not_falsify_safe(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_random(system, x0, unsafe, budget=30, seed=0)
        assert not result.falsified
        assert result.simulations == 30
        assert result.min_robustness > 0.0

    def test_random_falsifies_unsafe(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        result = falsify_random(system, x0, unsafe, budget=50, seed=0)
        assert result.falsified
        assert result.min_robustness < 0.0
        assert x0.contains(result.best_initial_state)

    def test_cmaes_falsifies_unsafe(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        result = falsify_cmaes(system, x0, unsafe, budget=60, seed=0)
        assert result.falsified
        assert x0.contains(result.best_initial_state, tol=1e-9)

    def test_cmaes_does_not_falsify_safe(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_cmaes(system, x0, unsafe, budget=40, seed=0)
        assert not result.falsified

    def test_counterexample_is_reproducible(self, unsafe_problem):
        """The reported initial state really escapes when re-simulated."""
        system, x0, unsafe = unsafe_problem
        result = falsify_random(system, x0, unsafe, budget=50, seed=0)
        rob = trajectory_robustness(
            system, result.best_initial_state, unsafe.safe_rectangle, 20.0, 0.05
        )
        assert rob < 0.0

    def test_budget_validation(self, safe_problem):
        system, x0, unsafe = safe_problem
        with pytest.raises(ReproError):
            falsify_random(system, x0, unsafe, budget=0)
        with pytest.raises(ReproError):
            falsify_cmaes(system, x0, unsafe, budget=2, population_size=10)

    def test_str_rendering(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_random(system, x0, unsafe, budget=5, seed=0)
        assert "not falsified" in str(result)
