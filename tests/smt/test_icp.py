"""Branch-and-prune solver tests: verdict correctness, witnesses, budgets."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.expr import cos, exp, sin, tanh, var
from repro.intervals import Box
from repro.smt import (
    IcpConfig,
    IcpSolver,
    Verdict,
    eq,
    ge,
    gt,
    le,
    lt,
    solve_conjunction,
)

X, Y = var("x"), var("y")
NAMES = ["x", "y"]
BOX = Box.from_bounds([-2.0, -2.0], [2.0, 2.0])


class TestVerdicts:
    def test_unsat_circle(self):
        result = solve_conjunction([le(X * X + Y * Y, -0.5)], BOX, NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_sat_small_disk(self):
        result = solve_conjunction([le(X * X + Y * Y, 0.01)], BOX, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness is not None
        assert result.witness_validated
        assert float(np.sum(result.witness**2)) <= 0.01 + 0.01

    def test_unsat_outside_region(self):
        # x >= 5 is impossible inside [-2, 2].
        result = solve_conjunction([ge(X, 5.0)], BOX, NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_conjunction_sat(self):
        constraints = [ge(X, 0.5), le(X, 0.6), ge(Y, -0.1), le(Y, 0.1)]
        result = solve_conjunction(constraints, BOX, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert 0.5 - 1e-3 <= result.witness[0] <= 0.6 + 1e-3

    def test_conjunction_unsat_by_combination(self):
        constraints = [ge(X, 1.0), le(X, 2.0), ge(X + Y, 3.9), le(Y, 1.5)]
        # x + y max = 2 + 1.5 = 3.5 < 3.9.
        result = solve_conjunction(constraints, BOX, NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_transcendental_unsat(self):
        # sin(x)^2 + cos(x)^2 = 1, so asking for <= 0.5 is UNSAT.
        result = solve_conjunction(
            [le(sin(X) * sin(X) + cos(X) * cos(X), 0.5)], BOX, NAMES
        )
        assert result.verdict is Verdict.UNSAT

    def test_transcendental_sat_tight(self):
        # tanh(x) = 0.5 at x = atanh(0.5) ~ 0.5493.
        result = solve_conjunction([eq(tanh(X), 0.5)], BOX, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness[0] == pytest.approx(math.atanh(0.5), abs=5e-3)

    def test_strict_vs_nonstrict_boundary(self):
        # x >= 2 touches the region boundary: delta-sat at the edge.
        result = solve_conjunction([ge(X, 2.0)], BOX, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness[0] >= 2.0 - 1e-3
        # x > 2 has no solution in the closed box, but its δ-weakening
        # does (x = 2): dReal semantics report delta-sat here, with a
        # witness at the boundary.  A clearly-interior emptiness is
        # still UNSAT:
        result2 = solve_conjunction([gt(X, 2.0)], BOX, NAMES)
        if result2.verdict is Verdict.DELTA_SAT:
            assert result2.witness[0] >= 2.0 - 1e-3
        result3 = solve_conjunction([gt(X, 2.5)], BOX, NAMES)
        assert result3.verdict is Verdict.UNSAT

    def test_exp_constraint(self):
        result = solve_conjunction([ge(exp(X), 10.0)], BOX, NAMES)
        assert result.verdict is Verdict.UNSAT  # e^2 ~ 7.39 < 10
        result2 = solve_conjunction([ge(exp(X), 7.0)], BOX, NAMES)
        assert result2.verdict is Verdict.DELTA_SAT

    def test_no_constraints_is_sat(self):
        result = solve_conjunction([], BOX, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert BOX.contains(result.witness)


class TestConfigAndBudget:
    def test_bad_config_rejected(self):
        with pytest.raises(SolverError):
            IcpConfig(delta=0.0)
        with pytest.raises(SolverError):
            IcpConfig(batch_size=0)
        with pytest.raises(SolverError):
            IcpConfig(max_boxes=0)

    def test_box_budget_unknown(self):
        # Equality on a hairline: tiny budget must return UNKNOWN.
        config = IcpConfig(delta=1e-12, max_boxes=3, use_contractor=False)
        result = IcpSolver(config).solve([eq(X - Y, 0.0)], BOX, NAMES)
        assert result.verdict is Verdict.UNKNOWN

    def test_time_budget_unknown(self):
        config = IcpConfig(delta=1e-15, time_limit=0.0, use_contractor=False)
        result = IcpSolver(config).solve([eq(sin(X) - Y, 0.0)], BOX, NAMES)
        assert result.verdict is Verdict.UNKNOWN

    def test_dimension_mismatch(self):
        with pytest.raises(SolverError):
            IcpSolver().solve([le(X, 0.0)], Box.from_bounds([0.0], [1.0]), NAMES)

    def test_unbounded_region_rejected(self):
        unbounded = Box.from_bounds([0.0, 0.0], [math.inf, 1.0])
        with pytest.raises(SolverError):
            IcpSolver().solve([le(X, 0.0)], unbounded, NAMES)

    def test_contractor_on_off_same_verdict(self):
        constraints = [le(X * X + Y * Y, 0.3), ge(X, 0.3)]
        on = IcpSolver(IcpConfig(use_contractor=True)).solve(constraints, BOX, NAMES)
        off = IcpSolver(IcpConfig(use_contractor=False)).solve(constraints, BOX, NAMES)
        assert on.verdict == off.verdict == Verdict.DELTA_SAT

    def test_contractor_reduces_splits_on_unsat(self):
        constraints = [le(X + Y, -3.99), ge(X, 0.0)]
        on = IcpSolver(IcpConfig(use_contractor=True)).solve(constraints, BOX, NAMES)
        off = IcpSolver(IcpConfig(use_contractor=False)).solve(constraints, BOX, NAMES)
        assert on.verdict == off.verdict == Verdict.UNSAT
        assert on.stats.boxes_processed <= off.stats.boxes_processed

    def test_stats_populated(self):
        result = solve_conjunction([le(X * X + Y * Y, -1.0)], BOX, NAMES)
        assert result.stats.boxes_processed >= 1
        assert result.stats.elapsed_seconds >= 0.0

    def test_delta_controls_witness_precision(self):
        coarse = IcpSolver(IcpConfig(delta=0.5)).solve([eq(X, 0.123)], BOX, NAMES)
        fine = IcpSolver(IcpConfig(delta=1e-4)).solve([eq(X, 0.123)], BOX, NAMES)
        assert abs(fine.witness[0] - 0.123) <= abs(coarse.witness[0] - 0.123) + 1e-6
        assert abs(fine.witness[0] - 0.123) <= 1e-3


class TestAgainstBruteForce:
    """Randomized cross-check: grid sampling vs solver verdict."""

    @given(
        a=st.floats(min_value=-2, max_value=2),
        b=st.floats(min_value=-2, max_value=2),
        c=st.floats(min_value=-3, max_value=3),
    )
    def test_linear_constraint_verdicts(self, a, b, c):
        if abs(a) + abs(b) < 1e-3:
            return
        constraint = le(a * X + b * Y, c)
        result = solve_conjunction([constraint], BOX, NAMES, IcpConfig(delta=1e-2))
        # Brute force on a grid.
        grid = BOX.sample_grid(21)
        exists = any(constraint.satisfied_at(p, NAMES) for p in grid)
        if exists:
            assert result.verdict is Verdict.DELTA_SAT
        elif result.verdict is Verdict.DELTA_SAT:
            # Near-boundary delta-sat is acceptable; the witness must
            # satisfy the delta-relaxed constraint.
            assert constraint.satisfied_at(result.witness, NAMES, slack=0.1)

    @given(r=st.floats(min_value=0.05, max_value=3.0))
    def test_ring_feasibility(self, r):
        constraints = [ge(X * X + Y * Y, r), le(X * X + Y * Y, r + 0.5)]
        result = solve_conjunction(constraints, BOX, NAMES, IcpConfig(delta=1e-2))
        # The ring always intersects the box for r <= 8 (corner norm).
        assert result.verdict is Verdict.DELTA_SAT
