"""Frontier-wide HC4-revise: vectorized forward-backward contraction.

:mod:`repro.smt.contractor` runs the classic HC4 algorithm one box at a
time with scalar :class:`~repro.intervals.Interval` objects — correct,
but the dominant serial cost of every hard δ-SAT query.  This module
re-runs the *same* algorithm across the **whole solver frontier at
once**: every expression-DAG node holds one batch of intervals of shape
``(m,)`` (one member per frontier box) instead of one scalar interval,
so a forward-backward sweep costs one NumPy pass per node rather than
``m`` Python interpreter walks.

Two things keep the vectorized pass fast on the narrow frontiers real
branch-and-prune searches produce:

* **Raw endpoint arrays.**  The hot loop carries ``(lo, hi)`` ndarray
  pairs directly (transcendentals borrow the
  :class:`~repro.intervals.IntervalArray` kernels), avoiding wrapper
  churn on the ~10³ NumPy calls a revise pass makes.
* **Constant folding.**  Tape slots holding constants are kept as plain
  floats: multiplying by a coefficient costs two ufuncs instead of a
  four-product hull, and backward rules skip the (provably no-op)
  tightening of constant children entirely.  Polynomial Lie derivatives
  are mostly ``const * monomial`` sums, so this removes the bulk of the
  extended-division work.

The per-box semantics follow the scalar contractor rule-for-rule
(including extended division through zero and the even/odd ``pow``
backward rules); where the scalar code raises
:class:`~repro.errors.EmptyIntervalError` to prune a box, the batched
code marks the box's row in an ``alive`` mask and keeps going.  The
cross-check tests in ``tests/smt/test_hc4_batched.py`` assert the two
implementations agree on which boxes are refuted and that the batched
contraction always contains the true solution set.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..expr import CompiledExpression
from ..intervals import BoxArray, IntervalArray
from ..intervals.rounding import PAD, next_down_array, next_up_array
from .constraint import Constraint, Relation

__all__ = ["FrontierContractor", "contract_frontier"]

_INF = math.inf
_HALF_PI = 0.5 * math.pi

_down = next_down_array
_up = next_up_array

#: forward ops that can empty a member (domain violations); everything
#: else maps non-empty members to non-empty members
_DOMAIN_OPS = frozenset({"sqrt", "log"})


def _relation_bounds(relation: Relation) -> tuple[float, float]:
    if relation in (Relation.LE, Relation.LT):
        return (-_INF, 0.0)
    if relation in (Relation.GE, Relation.GT):
        return (0.0, _INF)
    return (0.0, 0.0)


class FrontierContractor:
    """HC4-revise for one constraint, batched over a whole frontier.

    Built once per (constraint, variable order) pair; :meth:`revise`
    then contracts any :class:`~repro.intervals.BoxArray` in one
    vectorized forward-backward sweep.
    """

    def __init__(self, constraint: Constraint, variable_names: Sequence[str]):
        tape: CompiledExpression = constraint.compiled(variable_names)
        self._instructions = tape.instructions
        self._n_slots = tape.n_slots
        self._root = tape.result_slot
        self._target_bounds = _relation_bounds(constraint.relation)
        #: slots whose value is a constant, with that constant
        self._const: dict[int, float] = {
            instr[1]: float(instr[2])
            for instr in self._instructions
            if instr[0] == "const"
        }

    def revise(self, boxes: BoxArray) -> tuple[BoxArray, np.ndarray]:
        """One forward-backward pass over every box at once.

        Returns ``(contracted, alive)``: rows of ``contracted`` where
        ``alive`` is False were proven empty (the scalar contractor
        would have returned None for them) and hold their *input*
        bounds.
        """
        m = len(boxes)
        alive = np.ones(m, dtype=bool)
        if m == 0:
            return boxes, alive
        const = self._const

        # Forward pass: raw (lo, hi) pair per slot; const slots stay float.
        forward: list = [None] * self._n_slots
        for instr in self._instructions:
            op, slot = instr[0], instr[1]
            if op == "const":
                forward[slot] = instr[2]
            elif op == "var":
                forward[slot] = (boxes.lo[:, instr[2]], boxes.hi[:, instr[2]])
            else:
                value = _forward_op(op, instr, forward, m)
                if op in _DOMAIN_OPS:
                    lo, hi = value
                    emp = lo > hi
                    if emp.any():
                        # Mirror the scalar EmptyIntervalError: the box
                        # left the function domain.  Park dead rows on
                        # the whole line to keep arithmetic NaN-free.
                        alive &= ~emp
                        value = (
                            np.where(emp, -_INF, lo),
                            np.where(emp, _INF, hi),
                        )
                forward[slot] = value

        # Project the root onto the relation's satisfying set.
        root = forward[self._root]
        t_lo, t_hi = self._target_bounds
        if isinstance(root, float):
            # Constant constraint: nothing to contract; rows live iff the
            # constant satisfies the relation.
            if not (t_lo <= root <= t_hi):
                return boxes, np.zeros(m, dtype=bool)
            return boxes, alive
        p_lo = np.maximum(root[0], t_lo)
        p_hi = np.minimum(root[1], t_hi)
        emp = p_lo > p_hi
        if emp.any():
            alive &= ~emp
            p_lo = np.where(emp, root[0], p_lo)
            p_hi = np.where(emp, root[1], p_hi)

        # Backward pass: per-slot targets, children tightened after
        # parents; empties flip rows dead instead of raising.  Constant
        # slots are never tightened (their target stays the point value,
        # and with targets ⊆ forward the scalar exclusion check cannot
        # fire), so rules treat them as plain scalars.
        targets: list = list(forward)
        targets[self._root] = (p_lo, p_hi)

        def tighten(slot: int, cand_lo, cand_hi) -> None:
            nonlocal alive
            current = targets[slot]
            if isinstance(current, float):
                # Folded-constant subexpression (e.g. an Add of two
                # Consts): nothing upstream to narrow.
                return
            cur_lo, cur_hi = current
            lo = np.maximum(cur_lo, cand_lo)
            hi = np.minimum(cur_hi, cand_hi)
            emp = lo > hi
            if emp.any():
                alive = alive & ~emp
                # Dead rows keep their previous target so later rules
                # still see well-formed intervals.
                lo = np.where(emp, cur_lo, lo)
                hi = np.where(emp, cur_hi, hi)
            targets[slot] = (lo, hi)

        for instr in reversed(self._instructions):
            op = instr[0]
            if op in ("const", "var"):
                continue
            dead = _backward_op(instr, targets, forward, tighten, const, m)
            if dead is not None and dead.any():
                alive &= ~dead

        # Read back variable targets, intersecting duplicate occurrences.
        by_var: dict[int, tuple] = {}
        for instr in self._instructions:
            if instr[0] != "var":
                continue
            t = targets[instr[1]]
            seen = by_var.get(instr[2])
            if seen is None:
                by_var[instr[2]] = t
            else:
                by_var[instr[2]] = (
                    np.maximum(seen[0], t[0]),
                    np.minimum(seen[1], t[1]),
                )

        lo = boxes.lo.copy()
        hi = boxes.hi.copy()
        for index, (t_lo_arr, t_hi_arr) in by_var.items():
            lo[:, index] = np.maximum(lo[:, index], t_lo_arr)
            hi[:, index] = np.minimum(hi[:, index], t_hi_arr)
        emp = (lo > hi).any(axis=1)
        if emp.any():
            alive &= ~emp
            # Keep dead rows at their original bounds (they are pruned by
            # the caller; canonical-empty columns would poison widths).
            lo[emp] = boxes.lo[emp]
            hi[emp] = boxes.hi[emp]
        return BoxArray(lo, hi), alive


def contract_frontier(
    contractors: Sequence[FrontierContractor],
    boxes: BoxArray,
    max_rounds: int = 4,
    min_shrink: float = 0.01,
) -> tuple[BoxArray, np.ndarray]:
    """Round-robin HC4 over all constraints, whole frontier at once.

    The per-box semantics mirror
    :func:`repro.smt.contractor.contract_fixpoint`: each box iterates
    until a full round shrinks its summed widths by less than
    ``min_shrink`` relatively, or ``max_rounds`` rounds elapse; boxes
    proven empty are flagged in the returned ``alive`` mask.
    """
    m = len(boxes)
    alive = np.ones(m, dtype=bool)
    if m == 0:
        return boxes, alive
    active = np.ones(m, dtype=bool)
    current = boxes
    for _ in range(max_rounds):
        before = current.widths().sum(axis=1)
        for contractor in contractors:
            contracted, ok = contractor.revise(current)
            newly_dead = active & ~ok
            if newly_dead.any():
                alive &= ~newly_dead
            # Only rows still iterating take the contraction; frozen and
            # dead rows keep their bounds (matching the scalar loop,
            # which never revisits a box after its early stop).
            if active.all():
                current = contracted
            else:
                keep = ~active
                current = BoxArray(
                    np.where(keep[:, None], current.lo, contracted.lo),
                    np.where(keep[:, None], current.hi, contracted.hi),
                )
            active &= alive
            if not active.any():
                return current, alive
        after = current.widths().sum(axis=1)
        with np.errstate(invalid="ignore"):
            shrunk = (before - after) / np.maximum(before, 1e-300)
        stop = (before <= 0.0) | (shrunk < min_shrink) | ~np.isfinite(before)
        active &= ~stop
        active &= alive
        if not active.any():
            break
    return current, alive


# ----------------------------------------------------------------------
# Forward instruction semantics over raw (lo, hi) pairs
# ----------------------------------------------------------------------
def _expand(value, m: int) -> tuple[np.ndarray, np.ndarray]:
    """Promote a constant operand to endpoint arrays (rare slow path)."""
    if isinstance(value, float) or isinstance(value, int):
        arr = np.full(m, float(value))
        return arr, arr
    return value


def _forward_op(op: str, instr: tuple, forward: list, m: int):
    if op in ("add", "sub", "mul", "div", "min", "max"):
        a = forward[instr[2]]
        b = forward[instr[3]]
        a_const = isinstance(a, float)
        b_const = isinstance(b, float)
        if a_const and b_const:
            return _fold_const(op, a, b)
        if op == "add":
            if a_const:
                return _down(a + b[0]), _up(a + b[1])
            if b_const:
                return _down(a[0] + b), _up(a[1] + b)
            return _down(a[0] + b[0]), _up(a[1] + b[1])
        if op == "sub":
            if a_const:
                return _down(a - b[1]), _up(a - b[0])
            if b_const:
                return _down(a[0] - b), _up(a[1] - b)
            return _down(a[0] - b[1]), _up(a[1] - b[0])
        if op == "mul":
            if a_const:
                return _const_mul(a, b)
            if b_const:
                return _const_mul(b, a)
            return _ia_binary(a, b, m, "__mul__")
        if op == "div":
            if b_const and b != 0.0:
                return _const_mul_like_div(b, a)
            return _ia_binary(a, b, m, "__truediv__")
        if op == "min":
            a = _expand(a, m)
            b = _expand(b, m)
            return np.minimum(a[0], b[0]), np.minimum(a[1], b[1])
        a = _expand(a, m)
        b = _expand(b, m)
        return np.maximum(a[0], b[0]), np.maximum(a[1], b[1])
    a = forward[instr[2]]
    if isinstance(a, float):
        a = _expand(a, m)
    if op == "neg":
        return -a[1], -a[0]
    if op == "pow":
        res = IntervalArray(a[0], a[1]) ** instr[3]
        return res.lo, res.hi
    res = getattr(IntervalArray(a[0], a[1]), op)()
    return res.lo, res.hi


def _fold_const(op: str, a: float, b: float) -> float:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b if b != 0.0 else math.nan
    if op == "min":
        return min(a, b)
    return max(a, b)


def _const_mul(c: float, x) -> tuple[np.ndarray, np.ndarray]:
    """``c * [lo, hi]`` with outward rounding (two ufuncs + widening)."""
    if c == 0.0:
        # 0 * [lo, hi] is exactly {0} even for unbounded operands
        # (0 * inf would otherwise poison the row with NaN).
        zero = np.zeros_like(x[0])
        return zero, zero.copy()
    if c > 0.0:
        return _down(c * x[0]), _up(c * x[1])
    return _down(c * x[1]), _up(c * x[0])


def _const_mul_like_div(c: float, x) -> tuple[np.ndarray, np.ndarray]:
    """``[lo, hi] / c`` for a nonzero constant denominator."""
    if c > 0.0:
        return _down(x[0] / c), _up(x[1] / c)
    return _down(x[1] / c), _up(x[0] / c)


def _ia_binary(a, b, m: int, method: str) -> tuple[np.ndarray, np.ndarray]:
    a = _expand(a, m)
    b = _expand(b, m)
    res = getattr(IntervalArray(a[0], a[1]), method)(IntervalArray(b[0], b[1]))
    return res.lo, res.hi


# ----------------------------------------------------------------------
# Backward (inverse) instruction semantics
# ----------------------------------------------------------------------
def _backward_op(instr, targets, forward, tighten, const, m) -> np.ndarray | None:
    """Apply one node's backward rule; returns extra dead-row mask."""
    op, slot = instr[0], instr[1]
    target = targets[slot]
    if isinstance(target, float):
        # Constant subexpression: nothing upstream to tighten.
        return None
    t_lo, t_hi = target
    if op == "add":
        left, right = instr[2], instr[3]
        if right not in const:
            f = forward[left]
            if isinstance(f, float):
                tighten(right, _down(t_lo - f), _up(t_hi - f))
            else:
                tighten(right, _down(t_lo - f[1]), _up(t_hi - f[0]))
        if left not in const:
            f = forward[right]
            if isinstance(f, float):
                tighten(left, _down(t_lo - f), _up(t_hi - f))
            else:
                tighten(left, _down(t_lo - f[1]), _up(t_hi - f[0]))
        return None
    if op == "sub":
        left, right = instr[2], instr[3]
        if left not in const:
            f = forward[right]
            if isinstance(f, float):
                tighten(left, _down(t_lo + f), _up(t_hi + f))
            else:
                tighten(left, _down(t_lo + f[0]), _up(t_hi + f[1]))
        if right not in const:
            f = forward[left]
            if isinstance(f, float):
                tighten(right, _down(f - t_hi), _up(f - t_lo))
            else:
                tighten(right, _down(f[0] - t_hi), _up(f[1] - t_lo))
        return None
    if op == "mul":
        left, right = instr[2], instr[3]
        dead = None
        if left not in const:
            got = _backward_mul_child(left, right, target, forward, const, tighten, m)
            dead = _merge(dead, got)
        if right not in const:
            got = _backward_mul_child(right, left, target, forward, const, tighten, m)
            dead = _merge(dead, got)
        return dead
    if op == "div":
        left, right = instr[2], instr[3]
        dead = None
        if left not in const:
            # num target = target * den
            f = forward[right]
            if isinstance(f, float):
                tighten(left, *_const_mul(f, target))
            else:
                cand = IntervalArray(t_lo, t_hi) * IntervalArray(f[0], f[1])
                tighten(left, cand.lo, cand.hi)
        if right not in const:
            f = _expand(forward[left], m)
            num = IntervalArray(f[0], f[1])
            cand = num.extended_divide_hull(IntervalArray(t_lo, t_hi))
            dead = _merge(dead, _tighten_hull(right, cand, tighten))
        return dead
    if op == "neg":
        child = instr[2]
        if child not in const:
            tighten(child, -t_hi, -t_lo)
        return None
    if op == "pow":
        base = instr[2]
        if base in const:
            return None
        return _backward_pow(base, instr[3], target, forward, tighten, m)
    if op == "min":
        bound_hi = np.full(m, _INF)
        for child in (instr[2], instr[3]):
            if child not in const:
                tighten(child, t_lo, bound_hi)
        return None
    if op == "max":
        bound_lo = np.full(m, -_INF)
        for child in (instr[2], instr[3]):
            if child not in const:
                tighten(child, bound_lo, t_hi)
        return None
    child = instr[2]
    if child in const:
        return None
    return _backward_unary(op, child, target, tighten, m)


def _merge(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _backward_mul_child(
    child: int, other: int, target, forward, const, tighten, m
) -> np.ndarray | None:
    """Tighten ``child`` of ``child * other`` given the node target."""
    t_lo, t_hi = target
    c = const.get(other)
    if c is not None:
        if c != 0.0:
            tighten(child, *_const_mul_like_div(c, target))
            return None
        # child * 0 == 0: infeasible unless the target admits zero.
        return ~((t_lo <= 0.0) & (0.0 <= t_hi))
    f = _expand(forward[other], m)
    cand = IntervalArray(t_lo, t_hi).extended_divide_hull(
        IntervalArray(f[0], f[1])
    )
    return _tighten_hull(child, cand, tighten)


def _tighten_hull(slot: int, cand: IntervalArray, tighten) -> np.ndarray | None:
    """Tighten with an extended-division hull; empty members mean dead rows."""
    emp = cand.empty_mask()
    if emp.any():
        lo = np.where(emp, -_INF, cand.lo)
        hi = np.where(emp, _INF, cand.hi)
        tighten(slot, lo, hi)
        return emp
    tighten(slot, cand.lo, cand.hi)
    return None


def _pad_down(values: np.ndarray) -> np.ndarray:
    finite = np.isfinite(values)
    return np.where(finite, values - PAD * (1.0 + np.abs(values)), values)


def _pad_up(values: np.ndarray) -> np.ndarray:
    finite = np.isfinite(values)
    return np.where(finite, values + PAD * (1.0 + np.abs(values)), values)


def _backward_pow(
    base_slot: int, n: int, target, forward, tighten, m
) -> np.ndarray | None:
    t_lo, t_hi = target
    if n == 0:
        return ~((t_lo <= 1.0) & (1.0 <= t_hi))
    dead = None
    if n < 0:
        # x^-n = 1 / x^n: invert through the reciprocal, then recurse shape.
        ones = np.ones(m)
        recip = IntervalArray(ones, ones).extended_divide_hull(
            IntervalArray(t_lo, t_hi)
        )
        emp = recip.empty_mask()
        if emp.any():
            dead = emp
            t_lo = np.where(emp, -_INF, recip.lo)
            t_hi = np.where(emp, _INF, recip.hi)
        else:
            t_lo, t_hi = recip.lo, recip.hi
        n = -n
    if n % 2 == 1:
        with np.errstate(invalid="ignore"):
            lo = np.where(
                np.isfinite(t_lo),
                np.copysign(np.abs(t_lo) ** (1.0 / n), t_lo),
                t_lo,
            )
            hi = np.where(
                np.isfinite(t_hi),
                np.copysign(np.abs(t_hi) ** (1.0 / n), t_hi),
                t_hi,
            )
        tighten(base_slot, _pad_down(lo), _pad_up(hi))
        return dead
    # Even power: image is nonnegative.
    c_lo = np.maximum(t_lo, 0.0)
    c_hi = t_hi
    emp = c_lo > c_hi
    if emp.any():
        dead = _merge(dead, emp)
        c_lo = np.where(emp, 0.0, c_lo)
        c_hi = np.where(emp, 0.0, c_hi)
    with np.errstate(invalid="ignore", over="ignore"):
        hi_root = np.where(c_hi < _INF, c_hi ** (1.0 / n), _INF)
        lo_root = c_lo ** (1.0 / n)
    hi_root = _pad_up(hi_root)
    lo_root = _pad_down(lo_root)
    child_f = _expand(forward[base_slot], m)
    pos = child_f[0] >= 0.0
    neg = child_f[1] <= 0.0
    cand_lo = np.where(pos, np.maximum(lo_root, 0.0), -hi_root)
    cand_hi = np.where(neg, np.minimum(-lo_root, 0.0), hi_root)
    tighten(base_slot, cand_lo, cand_hi)
    return dead


def _backward_unary(op: str, child_slot: int, target, tighten, m) -> np.ndarray | None:
    """Vectorized mirror of the scalar ``_inverse_unary`` rules."""
    t_lo, t_hi = target
    if op == "tanh":
        dead = (t_hi < -1.0) | (t_lo > 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= -1.0,
                -_INF,
                _pad_down(np.arctanh(np.clip(t_lo, -1.0, 1.0))),
            )
            hi = np.where(
                t_hi >= 1.0,
                _INF,
                _pad_up(np.arctanh(np.clip(t_hi, -1.0, 1.0))),
            )
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if dead.any() else None
    if op == "sigmoid":
        dead = (t_hi < 0.0) | (t_lo > 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= 0.0,
                -_INF,
                _pad_down(_logit(np.clip(t_lo, 0.0, 1.0))),
            )
            hi = np.where(
                t_hi >= 1.0,
                _INF,
                _pad_up(_logit(np.clip(t_hi, 0.0, 1.0))),
            )
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if dead.any() else None
    if op == "exp":
        dead = t_hi <= 0.0
        any_dead = dead.any()
        # No subnormal clamp (see IntervalArray.log): np.log is correct
        # down to 5e-324; clamping would cut the child's true preimage.
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= 0.0,
                -_INF,
                _pad_down(np.log(np.abs(t_lo))),
            )
            hi = np.where(
                t_hi < _INF,
                _pad_up(np.log(np.abs(t_hi))),
                _INF,
            )
        if any_dead:
            lo = np.where(dead, -_INF, lo)
            hi = np.where(dead, _INF, hi)
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if any_dead else None
    if op == "log":
        with np.errstate(over="ignore"):
            lo = np.where(t_lo == -_INF, 0.0, _pad_down(np.exp(t_lo)))
            hi = np.where(t_hi == _INF, _INF, _pad_up(np.exp(t_hi)))
        tighten(child_slot, np.maximum(lo, 0.0), hi)
        return None
    if op == "sqrt":
        c_lo = np.maximum(t_lo, 0.0)
        dead = c_lo > t_hi
        any_dead = dead.any()
        if any_dead:
            c_lo = np.where(dead, 0.0, c_lo)
            c_hi = np.where(dead, 0.0, t_hi)
        else:
            c_hi = t_hi
        squared = IntervalArray(c_lo, c_hi).sq()
        tighten(child_slot, _pad_down(squared.lo), _pad_up(squared.hi))
        return dead if any_dead else None
    if op == "abs":
        c_hi = t_hi
        dead = c_hi < 0.0
        if dead.any():
            c_hi = np.where(dead, _INF, c_hi)
            tighten(child_slot, -c_hi, c_hi)
            return dead
        tighten(child_slot, -c_hi, c_hi)
        return None
    if op == "atan":
        c_lo = np.maximum(t_lo, -_HALF_PI)
        c_hi = np.minimum(t_hi, _HALF_PI)
        dead = c_lo > c_hi
        if dead.any():
            c_lo = np.where(dead, 0.0, c_lo)
            c_hi = np.where(dead, 0.0, c_hi)
        with np.errstate(invalid="ignore"):
            lo = np.where(
                c_lo <= -_HALF_PI + 1e-12, -_INF, _pad_down(np.tan(c_lo))
            )
            hi = np.where(
                c_hi >= _HALF_PI - 1e-12, _INF, _pad_up(np.tan(c_hi))
            )
        tighten(child_slot, lo, hi)
        return dead if dead.any() else None
    # sin / cos / tan: periodic inverse skipped (identity is sound).
    return None


def _logit(p: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(p / (1.0 - p))
