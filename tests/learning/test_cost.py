"""Tracking-cost (Section 4.2's J) tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dynamics import StraightLinePath
from repro.errors import TrainingError
from repro.learning import (
    CostWeights,
    figure4_training_path,
    proportional_controller_network,
    rollout,
    tracking_cost,
    training_start_state,
)
from repro.nn import FeedforwardNetwork, Layer


def zero_controller():
    return FeedforwardNetwork(
        [
            Layer(np.zeros((2, 2)), np.zeros(2), "tansig"),
            Layer(np.zeros((1, 2)), np.zeros(1), "linear"),
        ]
    )


class TestRollout:
    def test_shapes(self):
        net = proportional_controller_network(4)
        path = StraightLinePath(0.0)
        run = rollout(net, path, [0.5, 0.0, 0.0], steps=50, dt=0.1)
        assert run.states.shape[1] == 3
        assert len(run.d_errs) == len(run.states)
        assert len(run.controls) == len(run.states)
        assert run.cost > 0.0

    def test_validation(self):
        net = proportional_controller_network(4)
        path = StraightLinePath(0.0)
        with pytest.raises(TrainingError):
            rollout(net, path, [0.0, 0.0, 0.0], steps=0, dt=0.1)
        with pytest.raises(TrainingError):
            rollout(net, path, [0.0, 0.0, 0.0], steps=10, dt=0.0)
        with pytest.raises(TrainingError):
            rollout(net, path, [0.0, 0.0], steps=10, dt=0.1)

    def test_perfect_tracking_cost_is_terminal_only(self):
        """Driving exactly along the path accrues only residual cost."""
        net = zero_controller()  # u = 0: straight motion
        path = StraightLinePath(0.0)  # northbound line through origin
        steps, dt = 50, 0.1
        run = rollout(net, path, [0.0, 0.0, 0.0], steps=steps, dt=dt)
        # No lateral/heading error, no control effort.
        assert np.allclose(run.d_errs, 0.0, atol=1e-12)
        assert np.allclose(run.theta_errs, 0.0, atol=1e-12)
        assert np.allclose(run.controls, 0.0)
        # Terminal term measures distance to path "end" (the origin here).
        expected_terminal = 1e3 * float(steps * dt) ** 2
        assert run.cost == pytest.approx(expected_terminal, rel=1e-9)

    def test_weights_applied(self):
        """Doubling a weight doubles its cost share."""
        net = zero_controller()
        path = StraightLinePath(0.0)
        start = [1.0, 0.0, 0.0]  # constant d_err = -1, no controls
        base = rollout(net, path, start, 20, 0.1, weights=CostWeights(terminal=0.0))
        double = rollout(
            net, path, start, 20, 0.1,
            weights=CostWeights(distance=200.0, terminal=0.0),
        )
        assert double.cost == pytest.approx(2.0 * base.cost, rel=1e-9)

    def test_paper_weights_defaults(self):
        w = CostWeights()
        assert w.distance == 100.0
        assert w.angle == 1.0e5
        assert w.control == 100.0
        assert w.terminal == 1.0e3

    def test_diverging_rollout_truncates_not_crashes(self):
        # A controller that spins hard: massive theta churn, finite cost.
        spin = FeedforwardNetwork(
            [
                Layer(np.zeros((2, 2)), np.full(2, 5.0), "tansig"),
                Layer(np.full((1, 2), 50.0), np.zeros(1), "linear"),
            ]
        )
        path = figure4_training_path()
        run = rollout(spin, path, training_start_state(path), 100, 0.5)
        assert np.isfinite(run.cost)

    def test_better_controller_costs_less(self):
        path = figure4_training_path()
        start = training_start_state(path)
        good = proportional_controller_network(6)
        bad = zero_controller()
        good_cost = tracking_cost(good, path, start, 300, 0.5)
        bad_cost = tracking_cost(bad, path, start, 300, 0.5)
        assert good_cost < bad_cost


class TestTrackingCost:
    def test_matches_rollout(self):
        net = proportional_controller_network(4)
        path = StraightLinePath(0.0)
        start = [0.5, 0.0, 0.1]
        assert tracking_cost(net, path, start, 30, 0.1) == pytest.approx(
            rollout(net, path, start, 30, 0.1).cost
        )
