"""Table 1 — timing analysis of verification vs. network size.

For each hidden-layer width the paper reports, run the full Figure-1
procedure over several seeds (the paper averages 30; the default here is
smaller for practicality and configurable) and report the same columns:

====================  =====================================================
Column                Meaning
====================  =====================================================
``neurons``           hidden-layer width ``Nh``
``avg_iterations``    candidate-loop iterations (Solve LP + Check (5))
``lp_seconds``        average cumulative LP time per run
``query_seconds``     average cumulative SMT time in check (5)
``generator_seconds`` average time of the whole candidate loop
``other_seconds``     everything else (simulation, level set, checks 6-7)
``total_seconds``     average wall-clock of the whole procedure
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..barrier import SynthesisConfig, SynthesisStatus, verify_system
from ..smt import IcpConfig
from .setup import case_study_controller, paper_problem

__all__ = ["PAPER_NEURON_COUNTS", "Table1Row", "run_table1", "format_table1"]

#: hidden-layer widths of the paper's Table 1
PAPER_NEURON_COUNTS = (10, 20, 40, 50, 70, 80, 90, 100, 300, 500, 700, 1000)


@dataclass
class Table1Row:
    """Aggregated results for one network width."""

    neurons: int
    avg_iterations: float
    lp_seconds: float
    query_seconds: float
    generator_seconds: float
    other_seconds: float
    total_seconds: float
    verified_fraction: float
    runs: int


def run_table1(
    neuron_counts: Sequence[int] = PAPER_NEURON_COUNTS,
    seeds: Sequence[int] = (0, 1, 2),
    trained: bool = False,
    delta: float = 1e-3,
) -> list[Table1Row]:
    """Regenerate Table 1.

    Each (width, seed) pair runs the complete synthesis procedure; the
    seed drives the random seed-trace sampling, mirroring the paper's
    "each experiment uses a unique seed to generate the initial
    simulations".
    """
    rows = []
    for neurons in neuron_counts:
        network = case_study_controller(neurons, trained=trained)
        problem = paper_problem(network)
        reports = []
        for seed in seeds:
            config = SynthesisConfig(seed=seed, icp=IcpConfig(delta=delta))
            reports.append(verify_system(problem, config=config))
        verified = [r for r in reports if r.status is SynthesisStatus.VERIFIED]
        rows.append(
            Table1Row(
                neurons=neurons,
                avg_iterations=float(
                    np.mean([r.candidate_iterations for r in reports])
                ),
                lp_seconds=float(np.mean([r.lp_seconds for r in reports])),
                query_seconds=float(np.mean([r.query_seconds for r in reports])),
                generator_seconds=float(
                    np.mean([r.generator_seconds for r in reports])
                ),
                other_seconds=float(np.mean([r.other_seconds for r in reports])),
                total_seconds=float(np.mean([r.total_seconds for r in reports])),
                verified_fraction=len(verified) / len(reports),
                runs=len(reports),
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's column layout."""
    header = (
        f"{'Neurons':>8} {'AvgIter':>8} {'LP(s)':>8} {'Query(s)':>9} "
        f"{'Gen(s)':>8} {'Other(s)':>9} {'Total(s)':>9} {'Verified':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.neurons:>8d} {row.avg_iterations:>8.1f} {row.lp_seconds:>8.2f} "
            f"{row.query_seconds:>9.2f} {row.generator_seconds:>8.2f} "
            f"{row.other_seconds:>9.2f} {row.total_seconds:>9.2f} "
            f"{row.verified_fraction:>8.0%}"
        )
    return "\n".join(lines)
