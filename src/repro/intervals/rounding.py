"""Outward-rounding helpers for sound interval arithmetic.

IEEE-754 floating point rounds to nearest by default, so a naively
computed interval bound can land strictly inside the true bound.  To keep
enclosures sound we widen every computed bound by one unit in the last
place (ulp) using :func:`math.nextafter`.  This is slightly looser than
switching the FPU rounding mode but is portable, branch-free, and — for
the verification queries in this library — the extra ulp is negligible
compared to the solver precision ``delta``.
"""

from __future__ import annotations

import math

__all__ = [
    "next_down",
    "next_up",
    "round_down",
    "round_up",
    "widen",
]

_INF = math.inf


def next_down(value: float) -> float:
    """Return the largest float strictly below ``value`` (identity at -inf)."""
    if value == -_INF or math.isnan(value):
        return value
    return math.nextafter(value, -_INF)


def next_up(value: float) -> float:
    """Return the smallest float strictly above ``value`` (identity at +inf)."""
    if value == _INF or math.isnan(value):
        return value
    return math.nextafter(value, _INF)


def round_down(value: float, exact: bool = False) -> float:
    """Lower bound after a possibly inexact operation.

    ``exact=True`` skips the widening for operations known to be exact in
    floating point (negation, multiplication by powers of two, copies).
    """
    if exact:
        return value
    return next_down(value)


def round_up(value: float, exact: bool = False) -> float:
    """Upper bound after a possibly inexact operation (see :func:`round_down`)."""
    if exact:
        return value
    return next_up(value)


def widen(lower: float, upper: float) -> tuple[float, float]:
    """Widen both endpoints outward by one ulp each."""
    return next_down(lower), next_up(upper)
