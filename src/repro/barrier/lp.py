"""LP-based fitting of candidate generator functions (Figure 1's "Solve LP").

From a cloud of simulation states the LP finds template coefficients
``c`` making ``W(x) = sum c_j phi_j(x)``:

* positive at every sampled state:      ``W(x_i) >= t * |x_i|^2``
* decreasing along the vector field:    ``∇W(x_k)·f(x_k) <= -t * |x_k|^2``

with coefficients normalized to ``|c_j| <= 1`` (the scale of ``W`` is
irrelevant) and the shared margin ``t >= 0`` **maximized**.  A positive
optimal margin yields a strictly decreasing candidate; a zero margin
means the sampled evidence already rules the template out, reported as
:class:`~repro.errors.InfeasibleLPError`.

The margin is scaled by ``|x|^2`` so the constraints remain satisfiable
arbitrarily close to the equilibrium (where both ``W`` and its decay
vanish quadratically) — the standard trick from the simulation-guided
Lyapunov literature the paper builds on [11].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from ..dynamics import ContinuousSystem
from ..errors import InfeasibleLPError, LinearProgramError
from ..expr import Expr, gradient
from ..sim import Trace
from .templates import GeneratorTemplate

__all__ = [
    "LpConfig",
    "GeneratorCandidate",
    "LpAssembler",
    "fit_generator",
    "points_from_traces",
]


@dataclass
class LpConfig:
    """LP assembly knobs."""

    #: coefficient box bound (normalization)
    coefficient_bound: float = 1.0
    #: cap on the number of sample points (subsampled evenly if exceeded)
    max_points: int = 4000
    #: minimum acceptable optimal margin; below this the fit is rejected
    min_margin: float = 1e-9
    #: also require W positive at the sample points
    enforce_positivity: bool = True
    #: drop sample points closer to the origin than this: converged trace
    #: tails carry no constraint information and their rows degrade the
    #: LP's conditioning
    origin_exclusion: float = 1e-6
    #: points sampled per unsafe-facet edge for the separation constraints
    separation_samples: int = 32


class GeneratorCandidate:
    """A fitted generator function ``W`` with its diagnostic data."""

    def __init__(
        self,
        template: GeneratorTemplate,
        coefficients: np.ndarray,
        margin: float,
        state_names: Sequence[str],
    ):
        self.template = template
        self.coefficients = np.asarray(coefficients, dtype=float)
        self.margin = float(margin)
        self.state_names = list(state_names)
        self._expression: Expr | None = None
        self._gradient: list[Expr] | None = None

    @property
    def expression(self) -> Expr:
        """``W`` as a symbolic expression (built lazily)."""
        if self._expression is None:
            self._expression = self.template.build_expression(
                self.coefficients, self.state_names
            )
        return self._expression

    @property
    def gradient_exprs(self) -> list[Expr]:
        """``∇W`` as symbolic expressions (built lazily)."""
        if self._gradient is None:
            self._gradient = gradient(self.expression, self.state_names)
        return self._gradient

    def w_values(self, points: np.ndarray) -> np.ndarray:
        """Numeric ``W(x_i)``."""
        return self.template.evaluate(self.coefficients, points)

    def lie_derivative_values(
        self, points: np.ndarray, system: ContinuousSystem
    ) -> np.ndarray:
        """Numeric ``∇W(x_i)·f(x_i)``."""
        grads = self.template.gradient(self.coefficients, points)
        flows = system.f_batch(points)
        return np.sum(grads * flows, axis=1)

    def __repr__(self) -> str:
        return (
            f"<GeneratorCandidate margin={self.margin:.3g} "
            f"coeffs={np.array2string(self.coefficients, precision=4)}>"
        )


class LpAssembler:
    """Incremental LP row assembly across refinement iterations.

    The candidate loop re-solves the LP every iteration on a point cloud
    that only ever *grows* — each δ-SAT counterexample appends one trace
    — yet :func:`fit_generator` historically re-derived every feature and
    Lie-derivative row from scratch.  An assembler (one per synthesis
    run) caches the per-point rows, so a re-solve only evaluates the
    template and vector field on points it has never seen, and the
    separation block (a pure function of the initial-set vertices and
    unsafe-boundary samples, both fixed for the run) exactly once.

    The assembled matrix is **bit-identical** to a from-scratch build:
    every cached row is a function of its own sample point alone —
    :meth:`~repro.barrier.templates.GeneratorTemplate.features`,
    :meth:`~repro.barrier.templates.GeneratorTemplate.gradient_features`,
    and :meth:`~repro.dynamics.ContinuousSystem.f_batch` all evaluate
    row-independently — so computing it in an earlier (smaller) batch
    yields the same floats, and the LP solver sees the same problem
    either way (``tests/barrier/test_lp_incremental.py``).
    """

    def __init__(self, template: GeneratorTemplate, system: ContinuousSystem):
        self.template = template
        self.system = system
        #: per-point cache: C-order float64 row bytes -> (phi, lie) rows
        self._rows: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        self._separation: dict[tuple[bytes, bytes], np.ndarray] = {}

    @property
    def cached_points(self) -> int:
        """Number of sample points with cached rows."""
        return len(self._rows)

    def point_rows(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(phi, lie)`` rows for ``points``, computing only new ones.

        ``phi[i]`` is the basis-function row ``phi_j(x_i)`` and
        ``lie[i]`` the Lie-derivative row ``∇phi_j(x_i)·f(x_i)``, in the
        order of ``points``.
        """
        points = np.ascontiguousarray(points, dtype=float)
        keys = [row.tobytes() for row in points]
        rows = self._rows
        new_indices = [i for i, key in enumerate(keys) if key not in rows]
        if new_indices:
            fresh = points[new_indices]
            phi_new = self.template.features(fresh)
            grad_new = self.template.gradient_features(fresh)
            flows = self.system.f_batch(fresh)
            lie_new = np.einsum("md,mdk->mk", flows, grad_new)
            for j, i in enumerate(new_indices):
                rows[keys[i]] = (phi_new[j], lie_new[j])
        k = self.template.basis_size
        phi = np.empty((len(points), k))
        lie = np.empty((len(points), k))
        for i, key in enumerate(keys):
            phi_row, lie_row = rows[key]
            phi[i] = phi_row
            lie[i] = lie_row
        return phi, lie

    def separation_block(
        self, inner: np.ndarray, boundary: np.ndarray, k: int
    ) -> np.ndarray:
        """The ``W(v) - W(s) + t <= 0`` rows, built once per pair."""
        inner = np.atleast_2d(np.asarray(inner, dtype=float))
        boundary = np.atleast_2d(np.asarray(boundary, dtype=float))
        key = (inner.tobytes(), boundary.tobytes())
        block = self._separation.get(key)
        if block is None:
            block = _separation_rows(self.template, inner, boundary, k)
            self._separation[key] = block
        return block


def _separation_rows(
    template: GeneratorTemplate, inner: np.ndarray, boundary: np.ndarray, k: int
) -> np.ndarray:
    """Normalized separation rows ``[diff / scale | 1 / scale]``."""
    phi_inner = template.features(inner)  # (v, k)
    phi_boundary = template.features(boundary)  # (s, k)
    # W(v) - W(s) + t <= 0 for every (vertex, boundary-sample) pair.
    diff = phi_inner[:, None, :] - phi_boundary[None, :, :]
    diff = diff.reshape(-1, k)
    scale = np.maximum(np.abs(diff).max(axis=1, keepdims=True), 1.0)
    return np.hstack([diff / scale, 1.0 / scale])


def points_from_traces(
    traces: Sequence[Trace],
    extra_points: np.ndarray | None = None,
) -> np.ndarray:
    """Stack all trace states (plus optional extra points) into ``(N, n)``."""
    blocks = [trace.states for trace in traces if len(trace) > 0]
    if extra_points is not None and len(extra_points) > 0:
        blocks.append(np.atleast_2d(np.asarray(extra_points, dtype=float)))
    if not blocks:
        raise LinearProgramError("no sample points available for the LP")
    return np.vstack(blocks)


def fit_generator(
    template: GeneratorTemplate,
    points: np.ndarray,
    system: ContinuousSystem,
    config: LpConfig | None = None,
    separation: "tuple[np.ndarray, np.ndarray] | None" = None,
    assembler: LpAssembler | None = None,
) -> GeneratorCandidate:
    """Solve the margin-maximizing LP for the template coefficients.

    ``separation``, when given, is a pair ``(inner_points,
    boundary_points)`` — typically the initial set's vertices and samples
    of the unsafe boundary.  It adds the linear constraints
    ``W(v) + t <= W(s)`` for every pair, steering the LP toward
    candidates whose sublevel sets can actually separate ``X0`` from
    ``U`` (pure decrease-margin maximization can produce skewed
    candidates with no feasible level; soundness is unaffected since the
    SMT checks still gate the final certificate).

    ``assembler``, when given, is a per-run :class:`LpAssembler` bound
    to the same template and system: constraint rows for already-seen
    points come from its cache, so counterexample-refinement re-solves
    only evaluate the new trace's rows.  The assembled LP (and hence
    the fitted coefficients) is bit-identical with or without it.

    Raises
    ------
    InfeasibleLPError
        When the LP is infeasible or its optimal margin is not positive,
        i.e. no candidate in this template fits the sampled evidence.
    """
    config = config or LpConfig()
    if assembler is not None and (
        assembler.template is not template or assembler.system is not system
    ):
        raise LinearProgramError(
            "assembler is bound to a different template or system"
        )
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != template.dimension:
        raise LinearProgramError(
            f"points are {points.shape[1]}-D but template is {template.dimension}-D"
        )

    # Deduplicate and thin the point cloud.
    points = np.unique(np.round(points, decimals=12), axis=0)
    norms_sq = np.sum(points**2, axis=1)
    points = points[norms_sq > config.origin_exclusion**2]
    if len(points) == 0:
        raise LinearProgramError("all sample points collapse onto the origin")
    if len(points) > config.max_points:
        stride = int(np.ceil(len(points) / config.max_points))
        points = points[::stride]
    norms_sq = np.sum(points**2, axis=1)

    k = template.basis_size
    if assembler is not None:
        phi, lie_rows = assembler.point_rows(points)  # (m, k) each
    else:
        phi = template.features(points)  # (m, k)
        grad_phi = template.gradient_features(points)  # (m, n, k)
        flows = system.f_batch(points)  # (m, n)
        lie_rows = np.einsum("md,mdk->mk", flows, grad_phi)  # (m, k)

    # Decision vector z = [c_1..c_k, t]; maximize t  <=>  minimize -t.
    # Every row is normalized by |x|^2 so its coefficients are O(1)
    # regardless of how close the sample sits to the equilibrium —
    # un-normalized rows from converged trace tails (|x| ~ 1e-9) are
    # numerically invisible to the LP solver and silently corrupt it.
    rows = []
    rhs = []
    ones = np.ones((len(points), 1))
    # Decrease: (lie_rows / |x|^2) @ c + t <= 0.
    rows.append(np.hstack([lie_rows / norms_sq[:, None], ones]))
    rhs.append(np.zeros(len(points)))
    if config.enforce_positivity:
        # Positivity: -(phi / |x|^2) @ c + t <= 0.
        rows.append(np.hstack([-phi / norms_sq[:, None], ones]))
        rhs.append(np.zeros(len(points)))
    if separation is not None:
        inner, boundary = separation
        if assembler is not None:
            block = assembler.separation_block(inner, boundary, k)
        else:
            inner = np.atleast_2d(np.asarray(inner, dtype=float))
            boundary = np.atleast_2d(np.asarray(boundary, dtype=float))
            block = _separation_rows(template, inner, boundary, k)
        rows.append(block)
        rhs.append(np.zeros(block.shape[0]))
    a_ub = np.vstack(rows)
    b_ub = np.concatenate(rhs)

    bound = config.coefficient_bound
    bounds = [(-bound, bound)] * k + [(0.0, None)]
    cost = np.zeros(k + 1)
    cost[-1] = -1.0

    outcome = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not outcome.success:
        raise InfeasibleLPError(
            f"generator LP failed: {outcome.message} "
            f"({len(points)} points, basis {k})"
        )
    coefficients = outcome.x[:k]
    margin = float(outcome.x[-1])
    if margin < config.min_margin:
        raise InfeasibleLPError(
            f"generator LP margin {margin:.3e} below minimum "
            f"{config.min_margin:.3e}: sampled evidence rules out this template"
        )
    return GeneratorCandidate(template, coefficients, margin, system.state_names)
