"""Sharding micro-benchmark: serial vs multi-process frontier ICP.

Times the condition-(5) Lie-derivative check — the dominant SMT-stage
query — on the ``batched-icp`` backend against ``sharded-icp`` at 2 and
4 worker processes, on the two hardest builtin scenarios (dubins,
cartpole).  Parity is asserted unconditionally: identical verdicts,
witnesses, and solver counters at every shard count.

Writes ``benchmarks/results/BENCH_shard.json``.  Acceptance bar: >= 2.5x
condition-5 speedup at 4 shards on at least one scenario — enforced
only when the machine actually has >= 4 CPU cores (on smaller boxes the
fork+IPC overhead necessarily loses to the serial path, so the run
still records the numbers but the bar does not gate).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np

from repro.api import get_scenario
from repro.barrier import condition5_subproblems
from repro.engine import BatchedSmtBackend, ShardedSmtBackend
from repro.expr import sum_expr, var
from repro.smt import IcpConfig

REPEATS = 3
SPEEDUP_BAR = 2.5
SHARD_COUNTS = (2, 4)
SCENARIOS = ("dubins", "cartpole")


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _condition5(name):
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    config = IcpConfig(delta=scenario.config.icp.delta, max_boxes=300_000)
    return subs, problem.state_names, config


def _assert_parity(sharded, reference, label):
    assert sharded.verdict is reference.verdict, label
    if reference.witness is None:
        assert sharded.witness is None, label
    else:
        np.testing.assert_array_equal(sharded.witness, reference.witness)
    assert dataclasses.replace(sharded.stats, elapsed_seconds=0.0) == (
        dataclasses.replace(reference.stats, elapsed_seconds=0.0)
    ), label


def test_shard_micro(emit, results_dir):
    cpu_count = os.cpu_count() or 1
    bar_enforced = cpu_count >= 4

    scenarios = {}
    best = {"scenario": None, "speedup_4": 0.0}
    lines = [f"condition-5 ICP sharding (cpu_count={cpu_count}):"]
    for name in SCENARIOS:
        subs, names, config = _condition5(name)
        serial = BatchedSmtBackend()
        serial_s, serial_res = _best_of(
            REPEATS, lambda: serial.check(subs, names, config)
        )
        entry = {
            "subproblems": len(subs),
            "verdict": serial_res.verdict.value,
            "serial_seconds": round(serial_s, 6),
        }
        lines.append(f"  {name} ({len(subs)} subproblems, "
                     f"{serial_res.verdict.value}):")
        lines.append(f"    serial (batched-icp)  {serial_s:8.4f}s")
        for shards in SHARD_COUNTS:
            backend = ShardedSmtBackend(shards=shards)
            sharded_s, sharded_res = _best_of(
                REPEATS, lambda: backend.check(subs, names, config)
            )
            _assert_parity(sharded_res, serial_res, f"{name} @{shards}")
            speedup = serial_s / sharded_s
            entry[f"shard{shards}_seconds"] = round(sharded_s, 6)
            entry[f"speedup_{shards}"] = round(speedup, 2)
            lines.append(f"    {shards} shards           "
                         f"  {sharded_s:8.4f}s   ({speedup:.2f}x)")
        scenarios[name] = entry
        if entry["speedup_4"] > best["speedup_4"]:
            best = {"scenario": name, "speedup_4": entry["speedup_4"]}

    payload = {
        "cpu_count": cpu_count,
        "repeats": REPEATS,
        "speedup_bar": SPEEDUP_BAR,
        "bar_enforced": bar_enforced,
        "scenarios": scenarios,
        "best": best,
    }
    (results_dir / "BENCH_shard.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines.append(
        f"best 4-shard speedup: {best['speedup_4']:.2f}x on "
        f"{best['scenario']} (bar {SPEEDUP_BAR}x, "
        f"{'enforced' if bar_enforced else 'not enforced: <4 cores'})"
    )
    emit("shard_micro", "\n".join(lines))

    if bar_enforced:
        assert best["speedup_4"] >= SPEEDUP_BAR, (
            f"4-shard condition-5 speedup {best['speedup_4']:.2f}x below "
            f"the {SPEEDUP_BAR}x bar on every scenario"
        )
