"""Checkout pools of reusable kernel workspaces.

Every kernel execution — a vectorized tape pass in
:mod:`repro.perf.kernels` or an HC4 revise sweep in
:mod:`repro.smt.hc4` — needs per-call scratch state: a slot table (one
entry per tape slot) plus, for box kernels, prefilled constant rows.
Allocating that state on every call is pure overhead on the narrow
frontiers real branch-and-prune searches produce, so each compiled plan
keeps a :class:`BufferPool` of :class:`Workspace` objects and *leases*
one per call.

The lease discipline is strict:

* :meth:`BufferPool.acquire` hands out a workspace exclusively — a
  workspace is never visible to two live executions.  If every pooled
  workspace is leased (nested or re-entrant execution), a fresh one is
  built rather than sharing.
* :meth:`BufferPool.release` returns the workspace for reuse; releasing
  a workspace that is not leased is an error (it would let two future
  leases alias).
* Pools are bucketed by frontier size (next power of two, minimum
  :data:`MIN_BUCKET`), so a plan revising frontiers of 37, then 61, then
  44 boxes reuses one 64-wide workspace instead of three exact-size
  ones.
* Free lists are **per-thread**: the thread-pool SMT backend can run the
  same plan concurrently from several threads without locks or sharing.
* Pools are **fork-safe**: a child process starts with every free list
  empty (see :func:`_reset_pools_after_fork`), so a workspace leased in
  the parent at fork time — or sitting on the forking thread's free
  list — is never handed out again in the child while the parent still
  considers it live.  The sharded ICP workers
  (:mod:`repro.smt.icp_sharded`) fork with inherited, already-compiled
  plans and rely on this to build their own per-process workspaces.

``tests/perf/test_pool.py`` pins the exclusivity, reuse, and post-fork
semantics.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Callable

from ..errors import ReproError

__all__ = ["MIN_BUCKET", "Workspace", "BufferPool"]

#: smallest bucket width — tiny frontiers share one workspace size
MIN_BUCKET = 16


def bucket_for(m: int) -> int:
    """Smallest power-of-two bucket holding ``m`` members."""
    bucket = MIN_BUCKET
    while bucket < m:
        bucket *= 2
    return bucket


class Workspace:
    """One exclusive lease of kernel scratch state.

    ``slots`` is a plain list with one entry per tape slot — the kernel
    program's working memory.  What the entries hold is up to the plan
    that owns the pool (endpoint-array pairs for box kernels, value
    arrays for point kernels, floats for folded constants); the pool
    only guarantees the *list object* is never shared between two live
    leases, so a program may leave per-slot state behind between
    instructions without another execution clobbering it.
    """

    __slots__ = ("bucket", "slots", "data", "_leased")

    def __init__(self, bucket: int, n_slots: int):
        self.bucket = bucket
        self.slots: list = [None] * n_slots
        #: plan-private per-workspace state (e.g. prefilled constant
        #: rows of width ``bucket``), populated by the pool's ``init``
        self.data: dict = {}
        self._leased = False

    @property
    def leased(self) -> bool:
        """True while checked out of the pool."""
        return self._leased


class BufferPool:
    """Per-thread free lists of :class:`Workspace`, bucketed by size.

    Parameters
    ----------
    n_slots:
        Length of each workspace's slot table.
    init:
        Optional callback run once on every newly built workspace
        (e.g. prefill constant rows); reused leases skip it.
    """

    def __init__(self, n_slots: int, init: "Callable[[Workspace], None] | None" = None):
        self._n_slots = n_slots
        self._init = init
        self._local = threading.local()
        _LIVE_POOLS.add(self)

    def reset(self) -> None:
        """Drop every free list (all threads); leased workspaces detach.

        Used by the post-fork hook: a child inheriting this pool must
        not reuse workspaces the parent's threads still reference.
        Outstanding leases simply stop belonging to the pool — their
        holders may still :meth:`release` them, which files them into
        the fresh free lists without aliasing anything live.
        """
        self._local = threading.local()

    def _free(self) -> dict[int, list[Workspace]]:
        free = getattr(self._local, "free", None)
        if free is None:
            free = self._local.free = {}
        return free

    def acquire(self, m: int) -> Workspace:
        """Lease a workspace whose bucket holds ``m`` members.

        The returned workspace is exclusively owned by the caller until
        :meth:`release`; concurrent or nested acquires always get
        distinct workspaces.
        """
        bucket = bucket_for(m)
        stack = self._free().get(bucket)
        if stack:
            ws = stack.pop()
        else:
            ws = Workspace(bucket, self._n_slots)
            if self._init is not None:
                self._init(ws)
        ws._leased = True
        return ws

    def release(self, ws: Workspace) -> None:
        """Return a leased workspace to this thread's free list."""
        if not ws._leased:
            raise ReproError("workspace released twice (double-free would alias leases)")
        ws._leased = False
        self._free().setdefault(ws.bucket, []).append(ws)


#: every live pool, so the post-fork hook can find them without keeping
#: them alive (plans own their pools; a WeakSet never extends that).
_LIVE_POOLS: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


def _reset_pools_after_fork() -> None:
    """Child-side fork hook: start every inherited pool clean.

    The forked child shares no execution with the parent, but it *does*
    inherit the forking thread's free lists and any mid-checkout leases
    byte-for-byte.  Resetting here means the child never pops a
    workspace the parent thread also holds a (copy-on-write twin of a)
    reference to, and a lease that was live across the fork is simply
    forgotten rather than double-freed.
    """
    for pool in list(_LIVE_POOLS):
        pool.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython always has it
    os.register_at_fork(after_in_child=_reset_pools_after_fork)
