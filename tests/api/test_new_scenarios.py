"""The bicycle and cartpole scenario registrations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_scenario, scenario_names
from repro.dynamics import cartpole_plant, kinematic_bicycle_plant
from repro.experiments import format_table1, run_table1


class TestRegistration:
    def test_listed(self):
        assert {"bicycle", "cartpole"} <= set(scenario_names())

    def test_bicycle_shape(self):
        scenario = get_scenario("bicycle")
        assert scenario.dimension == 2
        assert "paper" in scenario.tags
        problem = scenario.problem()
        assert problem.system.state_names == ["ey", "epsi"]

    def test_cartpole_shape(self):
        scenario = get_scenario("cartpole")
        assert scenario.dimension == 4
        problem = scenario.problem()
        assert problem.system.state_names == ["pos", "vel", "theta", "omega"]
        # the stress workload ships a bounded solver budget
        assert scenario.config.icp.max_boxes <= 100_000
        assert scenario.config.icp.time_limit is not None


class TestClosedLoopDynamics:
    def test_bicycle_converges_from_initial_corner(self):
        problem = get_scenario("bicycle").problem()
        x0 = problem.initial_set.upper
        trace = problem.system.simulator().simulate(x0, 10.0, 0.02)
        assert np.abs(trace.states[-1]).max() < 1e-2
        # never leaves the safe rectangle on the way
        safe = problem.unsafe_set.safe_rectangle
        assert all(safe.contains(s) for s in trace.states)

    def test_cartpole_balances_from_initial_corner(self):
        problem = get_scenario("cartpole").problem()
        x0 = problem.initial_set.upper
        trace = problem.system.simulator().simulate(x0, 8.0, 0.02)
        assert np.abs(trace.states[-1]).max() < 1e-2
        safe = problem.unsafe_set.safe_rectangle
        assert all(safe.contains(s) for s in trace.states)


class TestPlants:
    def test_bicycle_plant_fields(self):
        plant = kinematic_bicycle_plant(speed=2.0, wheelbase=0.5)
        assert plant.state_names == ["ey", "epsi"]
        assert plant.input_names == ["delta"]

    def test_cartpole_force_vs_acceleration_agree_at_origin(self):
        import repro.expr as ex

        force = cartpole_plant(control="force")
        acc = cartpole_plant(control="acceleration")
        env_f = {"pos": 0.0, "vel": 0.0, "theta": 0.01, "omega": 0.0, "force": 0.0}
        env_a = {"pos": 0.0, "vel": 0.0, "theta": 0.01, "omega": 0.0, "acc": 0.0}
        # with zero input and a tiny angle, the force form's pole
        # acceleration is the acceleration form's scaled by (M+m)/M
        om_f = ex.evaluate(force.field_exprs[3], env_f)
        om_a = ex.evaluate(acc.field_exprs[3], env_a)
        assert abs(om_f - om_a * 1.1) < abs(om_a) * 1e-3
        # momentum conservation: with F=0 the cart recoils opposite the
        # falling pole — vel' = -m g sin(th) cos(th) / (M + m sin^2(th))
        v_f = ex.evaluate(force.field_exprs[1], env_f)
        expected = -0.1 * 9.81 * np.sin(0.01) * np.cos(0.01) / (1.0 + 0.1 * np.sin(0.01) ** 2)
        assert v_f == pytest.approx(expected, rel=1e-9)
        assert v_f < 0.0


class TestTable1Coverage:
    def test_scenario_rows(self):
        rows = run_table1(neuron_counts=(4,), seeds=(0,), scenarios=("bicycle",))
        assert len(rows) == 2
        assert rows[0].label == "" and rows[0].neurons == 4
        assert rows[1].label == "bicycle"
        assert rows[1].verified_fraction == 1.0
        rendered = format_table1(rows)
        assert "bicycle" in rendered
