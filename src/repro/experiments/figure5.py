"""Figure 5 — phase portrait with the certified barrier level set.

The figure shows, in the ``(d_err, theta_err)`` plane: the initial set
``X0`` (green), the unsafe set ``U`` (red), simulated trajectories
``Φs`` (blue, start ``*``, end ``o``), and the ellipsoidal barrier level
set between them.  This driver verifies a controller, samples
trajectories from the domain, parameterizes the certified ellipse
boundary, and checks the figure's two claims numerically:

* every ``X0`` corner lies inside the level set;
* the level set is disjoint from ``U``.

An ASCII rendering is included for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..barrier import (
    BarrierCertificate,
    SynthesisConfig,
    SynthesisReport,
    quadratic_forms,
    verify_system,
)
from ..errors import SynthesisError
from ..sim import Trace, sample_uniform
from .setup import case_study_controller, paper_problem

__all__ = ["Figure5Data", "run_figure5", "ellipse_boundary_points", "format_figure5", "render_ascii"]


@dataclass
class Figure5Data:
    """Everything needed to redraw Figure 5."""

    report: SynthesisReport
    certificate: BarrierCertificate
    trajectories: list[Trace]
    ellipse_boundary: np.ndarray  # (k, 2) points with W(x) = level
    x0_corners_inside: bool
    level_set_clear_of_unsafe: bool


def ellipse_boundary_points(
    certificate: BarrierCertificate, count: int = 256
) -> np.ndarray:
    """Points on ``{x : W(x) = level}`` for a quadratic certificate.

    With ``W = x^T P x`` (plus optional linear part), the boundary is
    ``x(phi) = x_c + sqrt(r) * P^{-1/2} [cos phi, sin phi]`` in 2-D.
    """
    if certificate.template is None or certificate.coefficients is None:
        raise SynthesisError("ellipse boundary requires a quadratic certificate")
    p_matrix, q_vector = quadratic_forms(
        certificate.template, certificate.coefficients
    )
    n = p_matrix.shape[0]
    if n != 2:
        raise SynthesisError("ellipse plotting is 2-D only")
    center = -0.5 * np.linalg.solve(p_matrix, q_vector)
    w_center = float(center @ p_matrix @ center + q_vector @ center)
    radius = certificate.level - w_center
    values, vectors = np.linalg.eigh(p_matrix)
    inv_sqrt = vectors @ np.diag(1.0 / np.sqrt(values)) @ vectors.T
    angles = np.linspace(0.0, 2.0 * np.pi, count, endpoint=False)
    circle = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    return center + np.sqrt(radius) * circle @ inv_sqrt.T


def run_figure5(
    hidden_neurons: int = 10,
    seed: int = 0,
    num_trajectories: int = 12,
    trajectory_duration: float = 15.0,
    trained: bool = False,
) -> Figure5Data:
    """Verify, then collect the figure's geometric content."""
    network = case_study_controller(hidden_neurons, trained=trained, seed=seed)
    problem = paper_problem(network)
    report = verify_system(problem, config=SynthesisConfig(seed=seed))
    if not report.verified or report.certificate is None:
        raise SynthesisError(
            f"figure 5 requires a verified system; got {report.status.value}"
        )
    certificate = report.certificate

    rng = np.random.default_rng(seed)
    starts = sample_uniform(problem.domain.to_box(), num_trajectories, rng)
    simulator = problem.system.simulator()
    domain = problem.domain.inflate(1e-9)
    trajectories = simulator.simulate_batch(
        starts,
        trajectory_duration,
        0.05,
        stop_condition=lambda s: not domain.contains(s),
    )

    boundary = ellipse_boundary_points(certificate)
    corners = problem.initial_set.vertices()
    corners_inside = bool(
        np.all(certificate.w_values(corners) <= certificate.level + 1e-9)
    )
    # Numeric disjointness: every boundary point stays inside the safe rect.
    safe_rect = problem.unsafe_set.safe_rectangle
    clear = all(safe_rect.contains(p, tol=1e-9) for p in boundary)
    return Figure5Data(
        report=report,
        certificate=certificate,
        trajectories=trajectories,
        ellipse_boundary=boundary,
        x0_corners_inside=corners_inside,
        level_set_clear_of_unsafe=clear,
    )


def format_figure5(data: Figure5Data) -> str:
    """Textual summary of the figure's content."""
    cert = data.certificate
    extents = data.ellipse_boundary
    lines = [
        f"barrier level l = {cert.level:.6g} (gamma = {cert.gamma:g})",
        f"ellipse extents: derr in [{extents[:, 0].min():.3f}, "
        f"{extents[:, 0].max():.3f}], thetaerr in "
        f"[{extents[:, 1].min():.3f}, {extents[:, 1].max():.3f}]",
        f"X0 corners inside level set: {data.x0_corners_inside}",
        f"level set disjoint from unsafe set: {data.level_set_clear_of_unsafe}",
        f"trajectories simulated: {len(data.trajectories)}",
    ]
    ends = np.array([t.final_state for t in data.trajectories])
    lines.append(
        f"trajectory endpoints max |derr| = {np.abs(ends[:, 0]).max():.4f}, "
        f"max |thetaerr| = {np.abs(ends[:, 1]).max():.4f}"
    )
    return "\n".join(lines)


def render_ascii(data: Figure5Data, width: int = 72, height: int = 24) -> str:
    """ASCII phase portrait: X0 (``#``), ellipse (``@``), trajectories (``.``).

    Axis ranges follow the paper's Figure 5: ``derr`` in [-6, 6] and
    ``theta_err`` in [-pi/2, pi/2].
    """
    x_min, x_max = -6.0, 6.0
    y_min, y_max = -np.pi / 2.0, np.pi / 2.0
    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, char: str) -> None:
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            return
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y_max - y) / (y_max - y_min) * (height - 1))
        grid[row][col] = char

    for trace in data.trajectories:
        for state in trace.states[::4]:
            plot(state[0], state[1], ".")
        plot(trace.states[0, 0], trace.states[0, 1], "*")
        plot(trace.states[-1, 0], trace.states[-1, 1], "o")
    for point in data.ellipse_boundary:
        plot(point[0], point[1], "@")
    x0 = data.report.certificate.problem.initial_set
    for corner in x0.vertices():
        plot(corner[0], corner[1], "#")
    safe = data.report.certificate.problem.unsafe_set.safe_rectangle
    for x in np.linspace(safe.lower[0], safe.upper[0], width):
        plot(x, safe.lower[1], "=")
        plot(x, safe.upper[1], "=")
    for y in np.linspace(safe.lower[1], safe.upper[1], height):
        plot(safe.lower[0], y, "|")
        plot(safe.upper[0], y, "|")
    return "\n".join("".join(row) for row in grid)
