"""Scenario corpus: generated twins, extra families, and the fuzzer.

Importing this package registers the corpus scenario families
(:mod:`repro.corpus.families`) alongside the builtins — the family
registry also lazy-loads them on first lookup, so ``repro families``
sees them without anyone importing :mod:`repro.corpus` explicitly.
"""

from .families import CORPUS_FAMILY_NAMES, register_corpus_families
from .fuzz import (
    CHECK_KINDS,
    DEFAULT_ENGINES,
    FUZZ_CLAMPS,
    FuzzFailure,
    FuzzReport,
    STRICT_PARITY_ENGINES,
    VOLATILE_FIELDS,
    check_point,
    fuzz,
    load_regressions,
    replay_failure,
    sample_corpus_point,
    shrink_failure,
    write_regression,
)
from .twins import (
    FLIPPING_MUTATIONS,
    MUTATIONS,
    PRESERVING_MUTATIONS,
    Twin,
    conforms,
    generate_twins,
    mutate,
)

__all__ = [
    "CHECK_KINDS",
    "CORPUS_FAMILY_NAMES",
    "DEFAULT_ENGINES",
    "FLIPPING_MUTATIONS",
    "FUZZ_CLAMPS",
    "FuzzFailure",
    "FuzzReport",
    "MUTATIONS",
    "PRESERVING_MUTATIONS",
    "STRICT_PARITY_ENGINES",
    "Twin",
    "VOLATILE_FIELDS",
    "check_point",
    "conforms",
    "fuzz",
    "generate_twins",
    "load_regressions",
    "mutate",
    "register_corpus_families",
    "replay_failure",
    "sample_corpus_point",
    "shrink_failure",
    "write_regression",
]
