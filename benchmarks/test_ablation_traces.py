"""Ablation: seed-trace count (the "simulation-guided" premise).

The LP is only as good as its simulation evidence.  With the separation
constraints enabled (see repro.barrier.lp), even tiny trace budgets
yield first-shot candidates on the case study; the sweep documents that
robustness and the LP-cost growth with evidence volume.  (Without
separation constraints, 2-5 traces produce skewed candidates that fail
level-set selection — reproduce by fitting with ``separation=None``.)
"""

from __future__ import annotations

import pytest

from repro.experiments import format_ablation, run_trace_count_sweep


def test_trace_count_sweep(benchmark, emit):
    def run():
        return run_trace_count_sweep(trace_counts=(2, 5, 10, 20, 40), hidden_neurons=10)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_traces", format_ablation(rows, "seed-trace count sweep (Nh=10)"))

    by_label = {row.label: row for row in rows}
    # With separation constraints every budget verifies on this system.
    assert by_label["traces=20"].status == "verified"
    assert by_label["traces=40"].status == "verified"
    assert all(
        row.status in ("verified", "no-candidate", "no-level-set")
        for row in rows
    )
