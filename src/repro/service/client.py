"""Thin stdlib HTTP client for the verification service.

:class:`ServiceClient` wraps the JSON API of
:class:`~repro.service.server.ServiceServer` with plain
``urllib.request`` calls — no sessions, no external dependencies.  The
CLI's ``repro submit`` / ``jobs`` / ``watch`` / ``cancel`` commands are
thin veneers over this class, and it is the supported way to drive the
service from Python::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:7463")
    job = client.submit("dubins", grid={"speed": "1:2:2", "nn_width": "4"})
    final = client.wait(job["id"], timeout=300)
    runs = client.result(job["id"])["runs"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Mapping

from ..errors import ReproError
from .server import DEFAULT_PORT

__all__ = ["ServiceClient", "ServiceError"]

#: states after which a job will never change again
_TERMINAL = frozenset(("DONE", "FAILED", "CANCELLED"))


class ServiceError(ReproError):
    """A service request failed (HTTP error, bad response, timeout)."""

    def __init__(self, message: str, status: "int | None" = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous client bound to one server base URL."""

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 60.0,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: "Mapping[str, object] | None" = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - error body is best effort
                detail = exc.reason
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}", exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # API calls
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + queue/fleet stats."""
        return self._request("GET", "/v1/healthz")

    def submit(
        self,
        target: str,
        grid: "Mapping[str, object] | None" = None,
        samples: "int | None" = None,
        overrides: "Mapping[str, object] | None" = None,
        seed: int = 0,
        engine: "str | None" = None,
        priority: int = 0,
    ) -> dict:
        """Submit a scenario/family job; returns its status dict."""
        body: dict[str, object] = {"target": target, "seed": seed}
        if grid is not None:
            body["grid"] = dict(grid)
        if samples is not None:
            body["samples"] = samples
        if overrides is not None:
            body["overrides"] = dict(overrides)
        if engine is not None:
            body["engine"] = engine
        if priority:
            body["priority"] = priority
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> list[dict]:
        """All jobs' status dicts, newest first."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """One job's status dict."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Job status + per-point runs (``artifact`` None = pending)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; returns the resulting status dict."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: "float | None" = None,
        poll: float = 0.5,
    ) -> dict:
        """Poll until the job reaches a terminal state.

        Raises :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in _TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield the job's NDJSON progress events until it terminates."""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"stream of {job_id} failed ({exc.code})", exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None
