"""Dubins car kinematics and path-following loop tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dynamics import DubinsCar, PathFollowingLoop, StraightLinePath
from repro.errors import ReproError
from repro.expr import evaluate


class TestKinematics:
    def test_eq_8_9_10(self):
        """x' = V sin(theta), y' = V cos(theta), theta' = u."""
        car = DubinsCar(speed=2.0)
        theta = 0.7
        derivs = car.derivatives([0.0, 0.0, theta], u=0.3)
        assert derivs[0] == pytest.approx(2.0 * math.sin(theta))
        assert derivs[1] == pytest.approx(2.0 * math.cos(theta))
        assert derivs[2] == pytest.approx(0.3)

    def test_speed_validation(self):
        with pytest.raises(ReproError):
            DubinsCar(speed=0.0)

    def test_state_shape_validation(self):
        with pytest.raises(ReproError):
            DubinsCar().derivatives([0.0, 0.0], u=0.0)

    def test_symbolic_matches_numeric(self):
        car = DubinsCar(speed=1.5)
        exprs = car.symbolic_derivatives(u=0.25)
        env = {"xv": 1.0, "yv": 2.0, "thetav": 0.4}
        numeric = car.derivatives([1.0, 2.0, 0.4], u=0.25)
        symbolic = [evaluate(e, env) for e in exprs]
        assert np.allclose(numeric, symbolic)

    def test_straight_motion_north(self):
        """theta = 0 drives along +y at speed V."""
        car = DubinsCar(speed=1.0)
        derivs = car.derivatives([0.0, 0.0, 0.0], u=0.0)
        assert np.allclose(derivs, [0.0, 1.0, 0.0])

    def test_constant_turn_is_circle(self):
        """With constant u the car traces a circle of radius V/u."""
        car = DubinsCar(speed=1.0)
        u = 0.5
        from repro.sim import Simulator

        sim = Simulator(lambda s: car.derivatives(s, u), method="rk4")
        period = 2.0 * math.pi / u
        trace = sim.simulate(np.array([0.0, 0.0, 0.0]), period, 0.001)
        # After one full period the car returns to the start pose.
        assert np.allclose(trace.final_state[:2], [0.0, 0.0], atol=1e-6)
        assert trace.final_state[2] == pytest.approx(2.0 * math.pi, rel=1e-9)


class TestPathFollowingLoop:
    def test_errors_passthrough(self):
        loop = PathFollowingLoop(
            DubinsCar(), StraightLinePath(0.0), lambda e: np.array([0.0])
        )
        errors = loop.errors([2.0, 0.0, 0.1])
        assert errors.d_err == pytest.approx(-2.0)
        assert errors.theta_err == pytest.approx(-0.1)

    def test_control_scalarized(self):
        loop = PathFollowingLoop(
            DubinsCar(), StraightLinePath(0.0), lambda e: np.array([0.7])
        )
        assert loop.control([0.0, 0.0, 0.0]) == 0.7

    def test_good_controller_tracks_line(self):
        """A proportional law on (d_err, theta_err) converges to the path."""

        def control(errors):
            return 0.6 * errors[0] + 2.0 * errors[1]

        loop = PathFollowingLoop(DubinsCar(), StraightLinePath(0.0), control)
        trace = loop.simulate([1.5, 0.0, 0.0], duration=30.0, dt=0.02)
        final_errors = loop.errors(trace.final_state)
        assert abs(final_errors.d_err) < 0.02
        assert abs(final_errors.theta_err) < 0.02

    def test_simulate_records_steering(self):
        loop = PathFollowingLoop(
            DubinsCar(), StraightLinePath(0.0), lambda e: np.array([0.1])
        )
        trace = loop.simulate([0.0, 0.0, 0.0], duration=1.0, dt=0.1)
        assert trace.inputs is not None
        assert np.allclose(trace.inputs, 0.1)
