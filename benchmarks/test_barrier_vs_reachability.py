"""Barrier certificates vs bounded-time reachability.

The tool families around this paper (NNV, Verisig, ReachNN) prove
NN-CPS safety by flowpipe computation over a finite horizon.  This
benchmark runs our first-order interval flowpipe against the barrier
pipeline on the same closed loop:

* tiny initial box, short horizon — the flowpipe proves bounded safety;
* the paper's full X0 — the flowpipe's wrapping diverges long before
  any useful horizon, while the barrier certificate proves safety for
  *all* time in about a second.
"""

from __future__ import annotations

import pytest

from repro.barrier import Rectangle, SynthesisConfig, verify_system
from repro.experiments import paper_problem, paper_unsafe_set
from repro.learning import proportional_controller_network
from repro.reach import ReachConfig, check_bounded_safety


def test_barrier_vs_flowpipe(benchmark, emit):
    network = proportional_controller_network(10)
    problem = paper_problem(network)
    unsafe = paper_unsafe_set()
    small_x0 = Rectangle([-0.1, -0.05], [0.1, 0.05])

    def run():
        barrier_report = verify_system(problem, config=SynthesisConfig(seed=0))
        small_proved, small_tube = check_bounded_safety(
            problem.system, small_x0, unsafe, 1.0, ReachConfig(dt=0.005)
        )
        full_proved, full_tube = check_bounded_safety(
            problem.system, problem.initial_set, unsafe, 5.0, ReachConfig(dt=0.01)
        )
        return barrier_report, (small_proved, small_tube), (full_proved, full_tube)

    barrier_report, small, full = benchmark.pedantic(run, rounds=1, iterations=1)
    small_proved, small_tube = small
    full_proved, full_tube = full

    lines = [
        "barrier vs first-order interval flowpipe (Nh=10):",
        f"  barrier      : {barrier_report.status.value}, unbounded horizon, "
        f"level {barrier_report.level:.4g}, {barrier_report.total_seconds:.2f}s",
        f"  flowpipe A   : X0=[-0.1,0.1]x[-0.05,0.05], T=1.0s -> "
        f"proved={small_proved}, max tube width {small_tube.max_width():.3f}",
        f"  flowpipe B   : the paper's X0, T=5.0s -> proved={full_proved} "
        f"(wrapping: max width {full_tube.max_width():.2f})",
    ]
    emit("barrier_vs_reachability", "\n".join(lines))

    # The storyline the paper motivates:
    assert barrier_report.verified  # unbounded proof on the full X0
    assert small_proved  # flowpipes work in the small
    assert not full_proved  # but wrap on the real problem
