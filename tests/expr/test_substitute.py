"""Substitution tests."""

from __future__ import annotations

import pytest

from repro.expr import (
    cos,
    evaluate,
    sin,
    structurally_equal,
    substitute,
    tanh,
    var,
    variables_of,
)

X, Y, U = var("x"), var("y"), var("u")


class TestSubstitute:
    def test_scalar_binding(self):
        e = substitute(X + Y, {"y": 3.0})
        assert evaluate(e, {"x": 1.0}) == 4.0

    def test_expression_binding(self):
        e = substitute(X * U, {"u": sin(Y)})
        assert "u" not in variables_of(e)
        assert evaluate(e, {"x": 2.0, "y": 0.5}) == pytest.approx(
            2.0 * evaluate(sin(Y), {"y": 0.5})
        )

    def test_unbound_left_alone(self):
        e = substitute(X + Y, {"z": 1.0})
        assert variables_of(e) == ["x", "y"]

    def test_no_binding_returns_same_nodes(self):
        e = sin(X) + cos(Y)
        out = substitute(e, {})
        assert out is e or structurally_equal(out, e)

    def test_shared_subtree_stays_shared(self):
        shared = tanh(U)
        e = shared * shared
        out = substitute(e, {"u": X + 1.0})
        left, right = out.children()
        assert left is right

    def test_closed_loop_composition_semantics(self):
        """The exact pattern used by compose(): u := h(x, y)."""
        field = sin(Y) - U
        controller = 0.5 * tanh(X) + 1.5 * tanh(Y)
        closed = substitute(field, {"u": controller})
        env = {"x": 0.3, "y": -0.2}
        expected = evaluate(field, {**env, "u": evaluate(controller, env)})
        assert evaluate(closed, env) == pytest.approx(expected)

    def test_nested_substitution_not_recursive(self):
        # Binding x -> y must not then rewrite the new y again.
        e = substitute(X + Y, {"x": Y, "y": 7.0})
        # x became the *expression* Var("y"), y became 7; the fresh Var("y")
        # introduced for x is a replacement value, not re-substituted.
        assert evaluate(e, {"y": 2.0}) == pytest.approx(2.0 + 7.0)
