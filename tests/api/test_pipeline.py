"""VerificationPipeline: staged execution, timings, progress hooks."""

from __future__ import annotations

import pytest

from repro.api import (
    PIPELINE_STAGES,
    StageEvent,
    VerificationPipeline,
    get_scenario,
)
from repro.barrier import SynthesisConfig, verify_system


@pytest.fixture(scope="module")
def linear_run():
    scenario = get_scenario("linear")
    pipeline = VerificationPipeline(config=SynthesisConfig(seed=0))
    return pipeline.run(scenario.problem())


class TestPipelineRun:
    def test_verifies(self, linear_run):
        assert linear_run.verified
        assert linear_run.report.certificate is not None

    def test_all_stages_timed(self, linear_run):
        assert set(linear_run.stage_seconds) == set(PIPELINE_STAGES)
        assert all(s >= 0.0 for s in linear_run.stage_seconds.values())

    def test_stage_timings_sum_to_about_total(self, linear_run):
        tracked = sum(linear_run.stage_seconds.values())
        assert tracked <= linear_run.total_seconds + 1e-6
        # The four stages cover everything but bookkeeping.
        assert tracked >= 0.8 * linear_run.total_seconds
        assert linear_run.untracked_seconds == pytest.approx(
            linear_run.total_seconds - tracked, abs=1e-9
        )

    def test_events_bracketed(self, linear_run):
        events = linear_run.events
        assert events, "no stage events recorded"
        assert events[0].kind == "start"
        # starts and ends pair up per stage
        for stage in PIPELINE_STAGES:
            starts = [e for e in events if e.stage == stage and e.kind == "start"]
            ends = [e for e in events if e.stage == stage and e.kind == "end"]
            assert len(starts) == len(ends)
            assert all(e.seconds >= 0.0 for e in ends)

    def test_event_order_starts_with_seed_sim(self, linear_run):
        assert linear_run.events[0].stage == "seed-sim"
        assert linear_run.events[-1].stage == "level-set"


class TestProgressCallback:
    def test_callback_sees_every_event(self):
        seen: list[StageEvent] = []
        pipeline = VerificationPipeline(
            config=SynthesisConfig(seed=0), progress=seen.append
        )
        result = pipeline.run(get_scenario("linear").problem())
        assert seen == result.events


class TestNumericalEquivalence:
    """The pipeline is a thin wrapper: same seed -> identical outcome as
    the plain verify_system call."""

    def test_matches_verify_system(self, linear_run):
        problem = get_scenario("linear").problem()
        direct = verify_system(problem, config=SynthesisConfig(seed=0))
        report = linear_run.report
        assert direct.status == report.status
        assert direct.level == report.level
        assert direct.candidate_iterations == report.candidate_iterations
        assert direct.traces_used == report.traces_used
