"""Boolean formula and DNF tests."""

from __future__ import annotations

import pytest

from repro.errors import ExpressionError
from repro.expr import var
from repro.smt import And, Atom, Or, conjunction_of, ge, le, to_dnf

X, Y = var("x"), var("y")


class TestConstruction:
    def test_atom_wraps_constraint(self):
        a = Atom(le(X, 0.0))
        assert a.constraint.relation.value == "<="

    def test_atom_rejects_non_constraint(self):
        with pytest.raises(ExpressionError):
            Atom(X)  # type: ignore[arg-type]

    def test_operators(self):
        f = Atom(le(X, 0.0)) & Atom(ge(Y, 0.0))
        assert isinstance(f, And)
        g = Atom(le(X, 0.0)) | Atom(ge(Y, 0.0))
        assert isinstance(g, Or)

    def test_constraints_coerced_in_lists(self):
        f = And([le(X, 0.0), ge(Y, 0.0)])
        assert len(f.parts) == 2

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            And([])
        with pytest.raises(ExpressionError):
            Or([])


class TestDnf:
    def test_atom(self):
        c = le(X, 0.0)
        assert to_dnf(Atom(c)) == [[c]]

    def test_bare_constraint(self):
        c = le(X, 0.0)
        assert to_dnf(c) == [[c]]

    def test_flat_and(self):
        c1, c2 = le(X, 0.0), ge(Y, 0.0)
        dnf = to_dnf(And([c1, c2]))
        assert dnf == [[c1, c2]]

    def test_flat_or(self):
        c1, c2 = le(X, 0.0), ge(Y, 0.0)
        dnf = to_dnf(Or([c1, c2]))
        assert dnf == [[c1], [c2]]

    def test_and_of_ors_distributes(self):
        a, b, c, d = le(X, 0.0), ge(X, 1.0), le(Y, 0.0), ge(Y, 1.0)
        dnf = to_dnf(And([Or([a, b]), Or([c, d])]))
        assert len(dnf) == 4
        assert [a, c] in dnf
        assert [b, d] in dnf

    def test_nested(self):
        a, b, c = le(X, 0.0), ge(X, 1.0), le(Y, 0.0)
        dnf = to_dnf(Or([And([a, c]), b]))
        assert dnf == [[a, c], [b]]

    def test_rectangle_complement_shape(self):
        """The x ∉ X0 formula used in the paper: 2n disjuncts."""
        from repro.barrier import Rectangle

        rect = Rectangle([-1.0, -0.5], [1.0, 0.5])
        dnf = to_dnf(rect.complement_formula(["x", "y"]))
        assert len(dnf) == 4
        assert all(len(conj) == 1 for conj in dnf)


class TestConjunctionOf:
    def test_flattens(self):
        c1, c2, c3 = le(X, 0.0), ge(Y, 0.0), le(Y, 1.0)
        flat = conjunction_of([c1, And([c2, c3])])
        assert flat == [c1, c2, c3]

    def test_rejects_disjunction(self):
        with pytest.raises(ExpressionError):
            conjunction_of([Or([le(X, 0.0), ge(X, 1.0)])])
