"""Public entry point: scenarios, pipeline, and batch runner.

The five-line quickstart::

    from repro import api

    artifact = api.run("dubins")
    print(artifact.status, artifact.level)
    print(artifact.to_json(indent=2))

Modules
-------
``repro.api.scenario``  :class:`Scenario` + the string-keyed registry
                        (pre-populated: ``dubins``, ``linear``,
                        ``double-integrator``, ``pendulum``,
                        ``vanderpol``)
``repro.api.pipeline``  :class:`VerificationPipeline` — the Figure-1
                        procedure with named, hookable stages
``repro.api.runner``    :func:`run` / :func:`run_batch` +
                        :class:`RunArtifact` (JSON round-trippable)

The solver-stack registry of :mod:`repro.engine` (``native`` /
``vectorized`` / ``parallel-smt``) is re-exported here so one import
serves both registries::

    artifact = api.run("dubins", engine="vectorized")
"""

from ..engine import (
    Engine,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from .pipeline import (
    PIPELINE_STAGES,
    PipelineRun,
    StageEvent,
    VerificationPipeline,
)
from .runner import RunArtifact, derive_scenario_seed, run, run_batch
from .scenario import (
    EPSILON,
    GAMMA,
    SPEED,
    Scenario,
    case_study_controller,
    dubins_scenario,
    get_scenario,
    list_scenarios,
    paper_initial_set,
    paper_problem,
    paper_unsafe_set,
    register_scenario,
    scenario_names,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
    unregister_scenario,
)

__all__ = [
    "EPSILON",
    "Engine",
    "GAMMA",
    "PIPELINE_STAGES",
    "PipelineRun",
    "RunArtifact",
    "SPEED",
    "Scenario",
    "StageEvent",
    "VerificationPipeline",
    "case_study_controller",
    "derive_scenario_seed",
    "dubins_scenario",
    "engine_names",
    "get_engine",
    "get_scenario",
    "list_engines",
    "list_scenarios",
    "paper_initial_set",
    "paper_problem",
    "paper_unsafe_set",
    "register_engine",
    "register_scenario",
    "run",
    "run_batch",
    "scenario_names",
    "synthesis_config_from_dict",
    "synthesis_config_to_dict",
    "unregister_engine",
    "unregister_scenario",
]
