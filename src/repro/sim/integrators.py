"""ODE integrators for autonomous systems ``x' = f(x)``.

Fixed-step explicit Euler and classic RK4 cover the paper's usage (the
traces only *suggest* candidate generator functions; soundness comes
from the SMT checks).  An adaptive Dormand–Prince RK45 is provided for
accuracy-sensitive workloads and for cross-checking the fixed-step
methods in the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import SimulationError

__all__ = [
    "VectorField",
    "euler_step",
    "rk4_step",
    "fixed_step_schedule",
    "FixedStepIntegrator",
    "EulerIntegrator",
    "RK4Integrator",
    "DormandPrince45",
    "get_integrator",
]

VectorField = Callable[[np.ndarray], np.ndarray]


def fixed_step_schedule(duration: float, dt: float) -> tuple[np.ndarray, list[float]]:
    """The canonical fixed-step time grid: ``(times, step_sizes)``.

    ``times`` has ``len(step_sizes) + 1`` entries starting at 0; the
    final step is the partial remainder whenever ``duration`` is not a
    multiple of ``dt``.  Both the scalar simulation driver and the
    vectorized batch integrator consume this one schedule, so their
    traces land on identical sample times by construction.
    """
    if dt <= 0.0:
        raise SimulationError(f"step size must be positive, got {dt}")
    if duration < 0.0:
        raise SimulationError(f"duration must be non-negative, got {duration}")
    times = [0.0]
    steps: list[float] = []
    t = 0.0
    while t < duration - 1e-12:
        h = min(dt, duration - t)
        steps.append(h)
        t += h
        times.append(t)
    return np.asarray(times), steps


def euler_step(f: VectorField, x: np.ndarray, dt: float) -> np.ndarray:
    """One explicit Euler step."""
    return x + dt * f(x)


def rk4_step(f: VectorField, x: np.ndarray, dt: float) -> np.ndarray:
    """One classic fourth-order Runge–Kutta step."""
    k1 = f(x)
    k2 = f(x + 0.5 * dt * k1)
    k3 = f(x + 0.5 * dt * k2)
    k4 = f(x + dt * k3)
    return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


class FixedStepIntegrator:
    """Base class for fixed-step integrators (subclasses define one step)."""

    name = "fixed"

    def step(self, f: VectorField, x: np.ndarray, dt: float) -> np.ndarray:
        """Advance the state by one step of size ``dt``."""
        raise NotImplementedError

    def integrate(
        self,
        f: VectorField,
        x0: np.ndarray,
        duration: float,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate for ``duration`` with steps of ``dt``.

        Returns ``(times, states)`` including the initial sample.  The
        final partial step (when ``duration`` is not a multiple of
        ``dt``) is taken with the remaining fraction.
        """
        if dt <= 0.0:
            raise SimulationError(f"step size must be positive, got {dt}")
        if duration < 0.0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        x = np.asarray(x0, dtype=float).copy()
        times = [0.0]
        states = [x.copy()]
        t = 0.0
        while t < duration - 1e-12:
            h = min(dt, duration - t)
            x = self.step(f, x, h)
            if not np.all(np.isfinite(x)):
                raise SimulationError(
                    f"integration blew up at t={t + h:g} (non-finite state)"
                )
            t += h
            times.append(t)
            states.append(x.copy())
        return np.array(times), np.array(states)


class EulerIntegrator(FixedStepIntegrator):
    """Explicit Euler (first order)."""

    name = "euler"

    def step(self, f: VectorField, x: np.ndarray, dt: float) -> np.ndarray:
        return euler_step(f, x, dt)


class RK4Integrator(FixedStepIntegrator):
    """Classic Runge–Kutta (fourth order)."""

    name = "rk4"

    def step(self, f: VectorField, x: np.ndarray, dt: float) -> np.ndarray:
        return rk4_step(f, x, dt)


# Dormand–Prince 5(4) Butcher tableau.
_DP_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (44 / 45, -56 / 15, 32 / 9),
    (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
    (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
    (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
)
_DP_B5 = (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0)
_DP_B4 = (
    5179 / 57600,
    0.0,
    7571 / 16695,
    393 / 640,
    -92097 / 339200,
    187 / 2100,
    1 / 40,
)


class DormandPrince45:
    """Adaptive Dormand–Prince RK5(4) with PI step-size control."""

    name = "rk45"

    def __init__(
        self,
        rtol: float = 1e-8,
        atol: float = 1e-10,
        max_step: float = np.inf,
        min_step: float = 1e-12,
        max_steps: int = 1_000_000,
    ):
        if rtol <= 0 or atol <= 0:
            raise SimulationError("tolerances must be positive")
        self.rtol = rtol
        self.atol = atol
        self.max_step = max_step
        self.min_step = min_step
        self.max_steps = max_steps

    def integrate(
        self,
        f: VectorField,
        x0: np.ndarray,
        duration: float,
        dt: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Adaptive integration over ``[0, duration]``.

        ``dt`` seeds the initial step size (defaults to ``duration/100``).
        """
        if duration < 0.0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        x = np.asarray(x0, dtype=float).copy()
        times = [0.0]
        states = [x.copy()]
        if duration == 0.0:
            return np.array(times), np.array(states)
        h = min(dt or duration / 100.0, duration, self.max_step)
        t = 0.0
        steps = 0
        while t < duration - 1e-12:
            if steps >= self.max_steps:
                raise SimulationError(f"RK45 exceeded {self.max_steps} steps")
            h = min(h, duration - t)
            x_new, error_norm = self._attempt(f, x, h)
            steps += 1
            if error_norm <= 1.0:
                t += h
                x = x_new
                if not np.all(np.isfinite(x)):
                    raise SimulationError(f"integration blew up at t={t:g}")
                times.append(t)
                states.append(x.copy())
            # Standard step-size update with safety factor and clamps.
            factor = 0.9 * (1.0 / max(error_norm, 1e-10)) ** 0.2
            h *= float(np.clip(factor, 0.2, 5.0))
            h = min(h, self.max_step)
            if h < self.min_step:
                raise SimulationError(
                    f"RK45 step size underflow at t={t:g} (h={h:g})"
                )
        return np.array(times), np.array(states)

    def _attempt(self, f: VectorField, x: np.ndarray, h: float) -> tuple[np.ndarray, float]:
        k = []
        for stage in range(7):
            xs = x.copy()
            for coeff, ki in zip(_DP_A[stage], k):
                xs = xs + h * coeff * ki
            k.append(f(xs))
        x5 = x + h * sum(b * ki for b, ki in zip(_DP_B5, k))
        x4 = x + h * sum(b * ki for b, ki in zip(_DP_B4, k))
        scale = self.atol + self.rtol * np.maximum(np.abs(x), np.abs(x5))
        error_norm = float(np.sqrt(np.mean(((x5 - x4) / scale) ** 2)))
        return x5, error_norm


_INTEGRATORS = {
    "euler": EulerIntegrator,
    "rk4": RK4Integrator,
    "rk45": DormandPrince45,
}


def get_integrator(name: str, **kwargs):
    """Instantiate an integrator by name (``euler``, ``rk4``, ``rk45``)."""
    key = name.lower()
    if key not in _INTEGRATORS:
        raise SimulationError(
            f"unknown integrator {name!r}; available: {sorted(_INTEGRATORS)}"
        )
    return _INTEGRATORS[key](**kwargs)
