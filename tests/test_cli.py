"""CLI tests (in-process, via main())."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.neurons == 10
        assert args.delta == 1e-3

    def test_table1_widths(self):
        args = build_parser().parse_args(["table1", "--widths", "4", "8"])
        assert args.widths == [4, 8]


class TestCommands:
    def test_verify_succeeds(self, capsys):
        code = main(["verify", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: verified" in out
        assert "barrier level" in out

    def test_verify_saved_controller(self, tmp_path, capsys):
        from repro.learning import proportional_controller_network
        from repro.nn import save_network

        path = tmp_path / "net.json"
        save_network(proportional_controller_network(4), path)
        code = main(["verify", "--controller", str(path)])
        assert code == 0

    def test_falsify_unsafe(self, capsys):
        code = main(
            ["falsify", "--unsafe-controller", "--budget", "60", "--method", "random"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FALSIFIED" in out

    def test_falsify_safe_returns_nonzero(self, capsys):
        code = main(["falsify", "--budget", "20", "--method", "random", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not falsified" in out

    def test_table1_small(self, capsys):
        code = main(["table1", "--widths", "4", "--seeds", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Neurons" in out

    def test_train_small(self, capsys):
        code = main(
            ["train", "--neurons", "4", "--population", "8", "--iterations", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cost J" in out

    def test_train_save(self, tmp_path, capsys):
        path = tmp_path / "trained.json"
        code = main(
            [
                "train", "--neurons", "4", "--population", "8",
                "--iterations", "2", "--save", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_figure5(self, capsys):
        code = main(["figure5", "--neurons", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "barrier level" in out
        assert "@" in out
