"""Compiled-tape tests: numeric parity with evaluate(), box soundness."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.expr import (
    absolute,
    atan,
    compile_expression,
    cos,
    evaluate,
    exp,
    log,
    maximum,
    minimum,
    sigmoid,
    sin,
    sqrt,
    tan,
    tanh,
    var,
)
from repro.intervals import Box, Interval

X, Y = var("x"), var("y")

# The expression menagerie used across parity and soundness tests.
MENAGERIE = [
    X + Y,
    X - 2.0 * Y,
    X * Y + X * X,
    X / (2.0 + Y * Y),
    -(X**3) + Y**2,
    sin(X) * cos(Y),
    tanh(X + Y) - sigmoid(X - Y),
    exp(X / 4.0) + atan(Y),
    minimum(X, Y) + maximum(X, -2.0),
    absolute(X - Y),
    tan(X / 4.0),
]


class TestPointParity:
    @pytest.mark.parametrize("expr", MENAGERIE, ids=range(len(MENAGERIE)))
    def test_matches_evaluate(self, expr, rng):
        tape = compile_expression(expr, ["x", "y"])
        points = rng.uniform(-2.0, 2.0, size=(40, 2))
        got = tape.eval_points(points)
        for point, value in zip(points, got):
            ref = evaluate(expr, {"x": point[0], "y": point[1]})
            assert value == pytest.approx(ref, rel=1e-12, abs=1e-12)

    def test_eval_point_scalar(self):
        tape = compile_expression(X * Y, ["x", "y"])
        assert tape.eval_point([3.0, 4.0]) == pytest.approx(12.0)

    def test_log_sqrt_parity(self, rng):
        expr = log(X) + sqrt(Y)
        tape = compile_expression(expr, ["x", "y"])
        points = rng.uniform(0.1, 5.0, size=(20, 2))
        got = tape.eval_points(points)
        for point, value in zip(points, got):
            ref = evaluate(expr, {"x": point[0], "y": point[1]})
            assert value == pytest.approx(ref, rel=1e-12)

    def test_unknown_variable_rejected(self):
        with pytest.raises(EvaluationError):
            compile_expression(X + var("z"), ["x", "y"])

    def test_wrong_column_count(self):
        tape = compile_expression(X, ["x"])
        with pytest.raises(EvaluationError):
            tape.eval_points(np.zeros((3, 2)))

    def test_len_reports_tape_size(self):
        assert len(compile_expression(X + Y, ["x", "y"])) == 3


class TestBoxSoundness:
    @pytest.mark.parametrize("expr", MENAGERIE, ids=range(len(MENAGERIE)))
    def test_boxes_enclose_samples(self, expr, rng):
        tape = compile_expression(expr, ["x", "y"])
        m = 30
        lo = rng.uniform(-2.0, 1.5, size=(m, 2))
        hi = lo + rng.uniform(0.0, 1.0, size=(m, 2))
        out_lo, out_hi = tape.eval_boxes(lo, hi)
        for t in np.linspace(0.0, 1.0, 5):
            points = lo + t * (hi - lo)
            values = tape.eval_points(points)
            finite = np.isfinite(values)
            assert np.all(values[finite] >= out_lo[finite] - 1e-9)
            assert np.all(values[finite] <= out_hi[finite] + 1e-9)

    def test_eval_box_matches_scalar_interval(self):
        expr = sin(X) * tanh(Y) + X * X
        tape = compile_expression(expr, ["x", "y"])
        box = Box.from_bounds([-0.5, 0.0], [1.0, 2.0])
        via_tape = tape.eval_box(box)
        via_walker = evaluate(expr, {"x": Interval(-0.5, 1.0), "y": Interval(0.0, 2.0)})
        # Same algorithm family: results agree to tight tolerance.
        assert via_tape.lo == pytest.approx(via_walker.lo, rel=1e-9, abs=1e-9)
        assert via_tape.hi == pytest.approx(via_walker.hi, rel=1e-9, abs=1e-9)

    def test_division_spanning_zero_gives_entire(self):
        tape = compile_expression(X / Y, ["x", "y"])
        lo, hi = tape.eval_boxes(np.array([[1.0, -1.0]]), np.array([[2.0, 1.0]]))
        assert lo[0] == -np.inf
        assert hi[0] == np.inf

    def test_sin_critical_points(self):
        tape = compile_expression(sin(X), ["x"])
        # Box containing pi/2: upper bound must be exactly 1.
        lo, hi = tape.eval_boxes(np.array([[1.0]]), np.array([[2.0]]))
        assert hi[0] == 1.0
        # Box containing -pi/2: lower bound must be exactly -1.
        lo, hi = tape.eval_boxes(np.array([[-2.0]]), np.array([[-1.0]]))
        assert lo[0] == -1.0

    def test_wide_sin_box(self):
        tape = compile_expression(sin(X), ["x"])
        lo, hi = tape.eval_boxes(np.array([[0.0]]), np.array([[100.0]]))
        assert lo[0] == -1.0
        assert hi[0] == 1.0

    def test_tan_pole_detection(self):
        tape = compile_expression(tan(X), ["x"])
        lo, hi = tape.eval_boxes(np.array([[1.0]]), np.array([[2.0]]))
        assert lo[0] == -np.inf and hi[0] == np.inf
        lo, hi = tape.eval_boxes(np.array([[-0.5]]), np.array([[0.5]]))
        assert np.isfinite(lo[0]) and np.isfinite(hi[0])

    def test_even_power_crossing_zero(self):
        tape = compile_expression(X**4, ["x"])
        lo, hi = tape.eval_boxes(np.array([[-1.0]]), np.array([[2.0]]))
        assert lo[0] <= 0.0
        assert hi[0] >= 16.0

    def test_sqrt_empty_domain_prunable(self):
        tape = compile_expression(sqrt(X), ["x"])
        lo, hi = tape.eval_boxes(np.array([[-4.0]]), np.array([[-1.0]]))
        # Empty image encoded as inverted infinite bounds: no value
        # satisfies lo <= v <= hi, so any constraint over it prunes.
        assert lo[0] > hi[0]

    @given(
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=0, max_value=2, allow_nan=False),
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=0, max_value=2, allow_nan=False),
    )
    def test_nn_closed_loop_soundness(self, x0, wx, y0, wy):
        """Soundness on the exact expression shape of the paper's query."""
        u = 2.4 * tanh(0.25 * X) + 8.0 * tanh(0.25 * Y)
        lie = (2.0 * X + 0.9 * Y) * sin(Y) + (0.9 * X + 1.6 * Y) * (-u)
        tape = compile_expression(lie, ["x", "y"])
        lo_arr = np.array([[x0, y0]])
        hi_arr = np.array([[x0 + wx, y0 + wy]])
        out_lo, out_hi = tape.eval_boxes(lo_arr, hi_arr)
        for tx in (0.0, 0.37, 1.0):
            for ty in (0.0, 0.61, 1.0):
                point = np.array([[x0 + tx * wx, y0 + ty * wy]])
                value = tape.eval_points(point)[0]
                assert out_lo[0] - 1e-9 <= value <= out_hi[0] + 1e-9
