"""Warm worker pool + chunked batch dispatch."""

from __future__ import annotations

import pytest

from repro.api import (
    WarmPool,
    WarmupSpec,
    get_warm_pool,
    run_batch,
    shutdown_warm_pool,
)
from repro.api.runner import _execute_chunk
from repro.api.scenario import get_scenario


@pytest.fixture(autouse=True)
def fresh_global_pool():
    shutdown_warm_pool()
    yield
    shutdown_warm_pool()


class TestWarmupSpec:
    def test_merge_unions_in_order(self):
        a = WarmupSpec(families=("dubins",))
        b = WarmupSpec(families=("bicycle", "dubins"), scenarios=("linear",))
        merged = a.merge(b)
        assert merged.families == ("dubins", "bicycle")
        assert merged.scenarios == ("linear",)

    def test_spec_is_picklable(self):
        import pickle

        spec = WarmupSpec(families=("dubins",))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestGlobalPool:
    def test_same_size_reuses_pool(self):
        first = get_warm_pool(2, WarmupSpec(families=("dubins",)))
        second = get_warm_pool(2, WarmupSpec(families=("bicycle",)))
        assert first is second
        assert second.warmup.families == ("dubins", "bicycle")

    def test_size_change_rebuilds(self):
        first = get_warm_pool(2)
        second = get_warm_pool(3)
        assert first is not second
        assert second.workers == 3

    def test_shutdown_clears(self):
        pool = get_warm_pool(2)
        shutdown_warm_pool()
        assert get_warm_pool(2) is not pool

    def test_executor_survives_across_dispatches(self):
        pool = get_warm_pool(2)
        executor = pool.executor
        assert pool.executor is executor

    def test_broken_executor_self_heals(self):
        """A crashed worker must not poison the pool for later calls."""
        import os
        from concurrent.futures.process import BrokenProcessPool

        pool = get_warm_pool(2)
        with pytest.raises(BrokenProcessPool):
            pool.executor.submit(os._exit, 1).result()
        # The next access replaces the broken executor and works again.
        assert pool.executor.submit(max, 2, 3).result() == 3

    def test_stable_sizing_across_sweep_miss_counts(self, tmp_path, monkeypatch):
        """Sweeps with different miss counts must reuse one pool."""
        import importlib

        sweep_module = importlib.import_module("repro.api.sweep")
        sizes: list[int] = []
        real = sweep_module.get_warm_pool

        def recording(workers, warmup=None):
            sizes.append(workers)
            return real(workers, warmup)

        monkeypatch.setattr(sweep_module, "get_warm_pool", recording)
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 4)
        sweep = sweep_module.sweep
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        sweep("linear", grid={"damping": "0.5,0.6"}, cache=store)
        sweep("linear", grid={"damping": "0.65,0.7,0.75"}, cache=store)
        # Both dispatches asked for the same (machine-sized) pool even
        # though the second sweep had a different miss count.
        assert len(set(sizes)) == 1


class TestThreadSafety:
    """The service shares one pool across concurrent jobs: racing the
    lazy executor build, re-warms, and shutdowns must never leak an
    executor or deadlock."""

    def test_concurrent_executor_access_builds_exactly_one(self):
        import threading

        pool = WarmPool(2)
        try:
            barrier = threading.Barrier(8)
            seen: list[object] = []

            def grab():
                barrier.wait(timeout=10)
                seen.append(pool.executor)

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(seen) == 8
            assert len({id(e) for e in seen}) == 1
        finally:
            pool.shutdown()

    def test_concurrent_ensure_warm_and_access(self):
        import threading

        pool = WarmPool(2)
        try:
            stop = threading.Event()
            errors: list[BaseException] = []

            def churn(spec):
                while not stop.is_set():
                    try:
                        pool.ensure_warm(spec)
                        pool.executor  # noqa: B018 - exercising the race
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(
                    target=churn, args=(WarmupSpec(families=(name,)),)
                )
                for name in ("linear", "dubins", "bicycle")
            ]
            for t in threads:
                t.start()
            import time

            time.sleep(0.5)
            stop.set()
            for t in threads:
                t.join(timeout=30)
            assert errors == []
            # All specs merged, no executor lost along the way.
            assert set(pool.warmup.families) == {"linear", "dubins", "bicycle"}
            assert pool.executor.submit(max, 1, 2).result() == 2
        finally:
            pool.shutdown()

    def test_shutdown_races_with_access(self):
        import threading

        pool = WarmPool(2)
        try:
            barrier = threading.Barrier(2)

            def shut():
                barrier.wait(timeout=10)
                pool.shutdown()

            thread = threading.Thread(target=shut)
            thread.start()
            barrier.wait(timeout=10)
            # Whichever side wins the race, the pool ends up usable.
            executor = pool.executor
            thread.join(timeout=30)
            assert executor is not None
            assert pool.executor.submit(max, 4, 5).result() == 5
        finally:
            pool.shutdown()

    def test_concurrent_global_pool_getters_agree(self):
        import threading

        results: list[object] = []
        barrier = threading.Barrier(6)

        def grab():
            barrier.wait(timeout=10)
            results.append(get_warm_pool(2))

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len({id(p) for p in results}) == 1


class TestChunkedDispatch:
    def test_execute_chunk_runs_each_payload(self):
        from repro.engine import get_engine

        scenario = get_scenario("linear")
        engine = get_engine("native")
        payloads = [(scenario, scenario.config, engine)] * 2
        artifacts = _execute_chunk(payloads, False)
        assert len(artifacts) == 2
        assert all(a.scenario == "linear" for a in artifacts)
        assert all(a.report is None for a in artifacts)  # stripped for transport

    def test_chunk_pins_the_kernel_toggle(self):
        """Dispatch forwards the parent's kernel switch to the worker.

        Long-lived warm-pool workers keep the toggle they inherited at
        fork time; _execute_chunk must pin it to the value the parent
        had at submit time (here exercised in-process).
        """
        from repro.perf import enabled, set_enabled

        from repro.engine import get_engine

        scenario = get_scenario("linear")
        payloads = [(scenario, scenario.config, get_engine("native"))]
        before = set_enabled(True)
        try:
            _execute_chunk(payloads, False, kernels=False)
            assert enabled() is False
            _execute_chunk(payloads, False, kernels=True)
            assert enabled() is True
        finally:
            set_enabled(before)

    def test_negative_chunksize_rejected(self):
        with pytest.raises(ValueError):
            run_batch(
                ["linear", "double-integrator"], workers=2, chunksize=0
            )

    def test_broken_pool_is_shut_down_for_later_callers(self):
        """run_batch on a pool whose worker dies heals the pool."""
        import os
        from concurrent.futures.process import BrokenProcessPool

        pool = get_warm_pool(2)
        # Kill the executor out from under the dispatch.
        pool.executor.submit(os._exit, 1)
        try:
            run_batch(
                ["linear", "double-integrator"], workers=2, seed=1, pool=pool
            )
        except BrokenProcessPool:
            pass  # the poisoned dispatch itself may fail either way
        # Later callers must get a working pool again.
        artifacts = run_batch(
            ["linear", "double-integrator"], workers=2, seed=1, pool=pool
        )
        assert [a.scenario for a in artifacts] == ["linear", "double-integrator"]
        assert all(a.status != "error" for a in artifacts)

    @pytest.mark.parametrize("chunksize", [1, 2, 5])
    def test_run_batch_chunked_matches_serial(self, chunksize):
        names = ["linear", "double-integrator"]
        serial = run_batch(names, workers=1, seed=11)
        chunked = run_batch(
            names, workers=2, seed=11, chunksize=chunksize,
            pool=get_warm_pool(2),
        )
        assert [a.scenario for a in chunked] == [a.scenario for a in serial]
        for a, b in zip(serial, chunked):
            assert a.status == b.status
            assert a.verified == b.verified
            if a.level is not None:
                assert a.level == b.level

    def test_run_batch_with_private_pool(self):
        pool = WarmPool(2, WarmupSpec(scenarios=("linear",)))
        try:
            artifacts = run_batch(
                ["linear", "linear"], workers=2, seed=3, pool=pool
            )
            assert len(artifacts) == 2
            assert all(a.status != "error" for a in artifacts)
            # The pool is still usable afterwards (run_batch must not
            # shut down an externally owned executor).
            again = run_batch(["linear"], workers=2, seed=3, pool=pool)
            # single scenario short-circuits inline; force remote path
            assert len(again) == 1
        finally:
            pool.shutdown()

    def test_seeded_artifacts_identical_across_pool_and_fresh(self):
        seeded = run_batch(["linear"], workers=1, seed=123)[0]
        pooled = run_batch(
            ["linear", "double-integrator"], workers=2, seed=123,
            pool=get_warm_pool(2),
        )[0]
        assert seeded.level == pooled.level
        assert seeded.config == pooled.config
