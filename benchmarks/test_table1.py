"""Table 1 — timing analysis of safety verification vs controller width.

Regenerates the paper's Table 1: for every hidden-layer size, run the
complete Figure-1 verification procedure and report average candidate
iterations and the LP / SMT-query / other / total time split.

Paper-vs-ours expectations (see EXPERIMENTS.md):

* every width verifies (the paper's 100% success across rows);
* candidate iterations stay small (paper: 1.0-3.0);
* the SMT query dominates the LP time, and total time grows with width
  (the paper's qualitative scaling), with absolute numbers reflecting
  our Python ICP rather than the authors' MATLAB + dReal stack.
"""

from __future__ import annotations

import pytest

from repro.barrier import SynthesisConfig, verify_system
from repro.experiments import (
    PAPER_NEURON_COUNTS,
    case_study_controller,
    format_table1,
    paper_problem,
    run_table1,
)

#: single-run widths benchmarked individually (full paper list)
BENCH_WIDTHS = PAPER_NEURON_COUNTS


@pytest.mark.parametrize("neurons", BENCH_WIDTHS)
def test_verify_width(benchmark, neurons):
    """One full verification per width (Table 1, one cell of one row)."""
    network = case_study_controller(neurons)
    problem = paper_problem(network)

    def run():
        return verify_system(problem, config=SynthesisConfig(seed=0))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.verified, f"width {neurons} failed: {report.status}"
    assert report.candidate_iterations <= 5


def test_table1_full(benchmark, emit):
    """The complete Table 1 (all widths, averaged over seeds)."""

    def run():
        return run_table1(neuron_counts=PAPER_NEURON_COUNTS, seeds=(0, 1))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("table1", format_table1(rows))

    # Shape assertions mirroring the paper's claims.
    assert all(row.verified_fraction == 1.0 for row in rows)
    assert all(1.0 <= row.avg_iterations <= 4.0 for row in rows)
    # Query time dominates LP time in every row (paper's cost profile).
    assert all(row.query_seconds > row.lp_seconds for row in rows)
    # Cost grows with width at the extremes (paper's scaling trend).
    first, last = rows[0], rows[-1]
    assert last.query_seconds > first.query_seconds
