"""The fault-injection registry: plans, counters, determinism."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault, ReproError
from repro.resilience import faults
from repro.resilience.faults import SEAM_KINDS, SEAMS, FaultAction, FaultPlan


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestFaultAction:
    def test_rejects_unknown_seam(self):
        with pytest.raises(ReproError, match="unknown fault seam"):
            FaultAction("nope.worker", "kill")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultAction("pool.worker", "explode")

    def test_rejects_bad_schedule(self):
        with pytest.raises(ReproError):
            FaultAction("pool.worker", "kill", at=-1)
        with pytest.raises(ReproError):
            FaultAction("pool.worker", "kill", count=0)

    def test_round_trips_through_dict(self):
        action = FaultAction("solver.output", "garbage", at=2, count=3, payload="x")
        assert FaultAction.from_dict(action.to_dict()) == action


class TestFire:
    def test_no_plan_is_inert(self):
        assert faults.fire("pool.worker") is None
        assert faults.fired_faults() == []

    def test_fires_at_scheduled_hit_only(self):
        plan = FaultPlan((FaultAction("shard.worker", "kill", at=2),))
        faults.install_plan(plan)
        assert faults.fire("shard.worker") is None
        assert faults.fire("shard.worker") is None
        action = faults.fire("shard.worker")
        assert action is not None and action.kind == "kill"
        assert faults.fire("shard.worker") is None

    def test_count_covers_consecutive_hits(self):
        plan = FaultPlan((FaultAction("solver.spawn", "error", at=1, count=2),))
        faults.install_plan(plan)
        hits = [faults.fire("solver.spawn") for _ in range(4)]
        assert [a is not None for a in hits] == [False, True, True, False]

    def test_counters_are_per_seam(self):
        plan = FaultPlan((FaultAction("store.read", "error", at=0),))
        faults.install_plan(plan)
        # Other seams advance their own counters without firing.
        assert faults.fire("store.write") is None
        assert faults.fire("store.read") is not None

    def test_install_resets_counters_and_log(self):
        plan = FaultPlan((FaultAction("journal.append", "torn", at=0),))
        faults.install_plan(plan)
        assert faults.fire("journal.append") is not None
        assert len(faults.fired_faults()) == 1
        faults.install_plan(plan)
        assert faults.fired_faults() == []
        assert faults.fire("journal.append") is not None

    def test_fired_log_records_seam_kind_hit(self):
        plan = FaultPlan((FaultAction("store.write", "torn", at=1),))
        faults.install_plan(plan)
        faults.fire("store.write", "aaaa")
        faults.fire("store.write", "bbbb")
        log = faults.fired_faults()
        assert log == [
            {"seam": "store.write", "kind": "torn", "hit": 1, "detail": "bbbb"}
        ]

    def test_injected_context_always_clears(self):
        plan = FaultPlan((FaultAction("store.read", "error", at=0),))
        with pytest.raises(RuntimeError):
            with faults.injected(plan):
                assert faults.active_plan() is plan
                raise RuntimeError("escape")
        assert faults.active_plan() is None

    def test_raise_if_raises_injected_fault(self):
        plan = FaultPlan((FaultAction("store.read", "error", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                faults.raise_if("store.read", "k")


class TestFaultPlan:
    def test_random_is_deterministic(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7) != FaultPlan.random(8)

    def test_random_draws_only_valid_kinds(self):
        for seed in range(50):
            for action in FaultPlan.random(seed).actions:
                assert action.seam in SEAMS
                assert action.kind in SEAM_KINDS[action.seam]

    def test_random_rejects_unknown_seam(self):
        with pytest.raises(ReproError):
            FaultPlan.random(0, seams=("bogus",))

    def test_round_trips_through_dict(self):
        plan = FaultPlan.random(3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_for_seam_filters(self):
        plan = FaultPlan(
            (
                FaultAction("pool.worker", "kill"),
                FaultAction("store.read", "error"),
            )
        )
        assert [a.seam for a in plan.for_seam("store.read")] == ["store.read"]
