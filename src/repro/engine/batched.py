"""The ``batched-icp`` engine's checker: one SoA frontier per query.

Every barrier-condition query decomposes into box subproblems
(:func:`repro.barrier.condition5_subproblems` yields the ``D \\ X0``
cover, check (7) one region per unsafe facet).  The serial and
thread-pool backends solve them one scalar-frontier search at a time;
:class:`BatchedSmtBackend` instead hands each *run of subproblems that
share a constraint system* to
:meth:`~repro.smt.BatchedIcpSolver.solve_union`, which seeds a single
:class:`~repro.intervals.BoxArray` frontier with all their regions and
branch-and-prunes the union with the frontier-wide vectorized HC4
contractor of :mod:`repro.smt.hc4`.

Verdict combination is the serial semantics: groups are consecutive
runs, checked in order, first δ-SAT group wins, and inside a group the
union solver only reports a witness for region ``k`` once every region
``< k`` is refuted — so the counterexample-guided synthesis loop sees
the same subproblem-ordering contract as with the ``native`` engine.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..smt import BatchedIcpSolver, IcpConfig, SmtResult, Subproblem
from ..smt.result import SolverStats, Verdict

__all__ = ["BatchedSmtBackend"]


class BatchedSmtBackend:
    """δ-SAT checking on the structure-of-arrays branch-and-prune solver."""

    name = "batched-icp"

    def _make_solver(
        self,
        config: IcpConfig | None,
        should_stop: "Callable[[], bool] | None",
    ) -> BatchedIcpSolver:
        """Solver factory — the ``sharded-icp`` subclass swaps this."""
        return BatchedIcpSolver(config, should_stop=should_stop)

    def check(
        self,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: IcpConfig | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> SmtResult:
        """Group shared-constraint subproblems into union-seeded solves.

        ``should_stop`` (optional) cancels the search cooperatively —
        see :class:`~repro.smt.BatchedIcpSolver`; the ``portfolio``
        engine passes it, default callers never do.
        """
        solver = self._make_solver(config, should_stop)
        delta = solver.config.delta
        if not subproblems:
            return SmtResult(Verdict.UNSAT, delta)
        merged = SolverStats()
        saw_unknown = False
        for constraints, regions in _shared_constraint_runs(subproblems):
            if len(regions) == 1:
                result = solver.solve(constraints, regions[0], names)
            else:
                result = solver.solve_union(constraints, regions, names)
            merged.merge(result.stats)
            if result.verdict is Verdict.DELTA_SAT:
                result.stats = merged
                return result
            if result.verdict is Verdict.UNKNOWN:
                saw_unknown = True
        verdict = Verdict.UNKNOWN if saw_unknown else Verdict.UNSAT
        return SmtResult(verdict, delta, stats=merged)


def _shared_constraint_runs(subproblems: Sequence[Subproblem]):
    """Split into consecutive runs whose constraint lists are identical.

    Identity (not equality) keeps the check cheap and is what the
    condition builders produce: one constraint object shared across the
    whole ``D \\ X0`` cover.  Consecutive grouping preserves the serial
    first-witness ordering across runs.
    """
    run_key: tuple[int, ...] | None = None
    constraints: list = []
    regions: list = []
    for sub in subproblems:
        key = tuple(id(c) for c in sub.constraints)
        if key != run_key:
            if regions:
                yield constraints, regions
            run_key = key
            constraints = list(sub.constraints)
            regions = []
        regions.append(sub.region)
    if regions:
        yield constraints, regions
