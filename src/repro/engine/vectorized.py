"""The ``vectorized`` engine's simulator: one array pass for all traces.

The native seed-sim stage integrates each initial state in its own
Python loop — for ``m`` seed traces of ``T`` steps that is ``m * T``
interpreted steps, each paying a per-call vector-field dispatch.  The
:class:`VectorizedSimBackend` instead steps **all** trajectories through
one ``(m, n)`` NumPy array per stage of the Runge–Kutta update, so the
Python overhead is ``T`` regardless of how many seeds the synthesis
uses.  On the paper's dubins workload this is the dominant non-SMT cost
(see ``benchmarks/test_engine_backends.py``).

Semantics match the native fixed-step driver: the shared time grid
(including the final partial step), the blow-up guard, the non-finite
cutoff, and per-trajectory early stopping all behave identically — only
the execution order of floating-point work differs, so traces agree to
integrator accuracy rather than bit-for-bit.

The adaptive ``rk45`` method steps each trajectory on its own time grid
and cannot share an array pass; it falls back to the native driver.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sim import Trace
from ..sim.integrators import euler_step, fixed_step_schedule, rk4_step
from .native import NativeSimBackend

__all__ = ["VectorizedSimBackend"]


def _batch_field(system) -> Callable[[np.ndarray], np.ndarray]:
    """Best batched ``F(X) -> X_dot`` for a system, ``(m, n) -> (m, n)``.

    Prefers :meth:`~repro.dynamics.ContinuousSystem.f_vectorized` (a
    dedicated batch override or the vectorized compiled tapes); any
    system-like object exposing only ``f_batch`` still works.
    """
    fast = getattr(system, "f_vectorized", None)
    if fast is not None:
        return fast
    return system.f_batch


# The canonical scalar steppers are pure NumPy expressions, so with a
# batched field they broadcast over (m, n) state arrays unchanged.
_BATCH_STEPPERS = {"rk4": rk4_step, "euler": euler_step}


class VectorizedSimBackend:
    """Fixed-step batch integrator over all trajectories at once.

    Parameters
    ----------
    blowup_norm:
        Euclidean norm beyond which a trajectory stops and its trace is
        marked truncated (the native default); None disables the guard.
    """

    name = "vectorized-sim"

    def __init__(self, blowup_norm: float | None = 1e6):
        self.blowup_norm = blowup_norm
        self._fallback = NativeSimBackend()

    def simulate(
        self,
        system,
        initial_states: np.ndarray,
        duration: float,
        dt: float,
        method: str = "rk4",
        stop_condition: Callable[[np.ndarray], bool] | None = None,
    ) -> list[Trace]:
        """Advance every initial state in one array pass per RK stage."""
        stepper = _BATCH_STEPPERS.get(method.lower())
        if stepper is None:
            # Adaptive integrators choose per-trajectory step sizes; the
            # shared-grid batch pass does not apply.
            return self._fallback.simulate(
                system, initial_states, duration, dt,
                method=method, stop_condition=stop_condition,
            )
        x0s = np.atleast_2d(np.asarray(initial_states, dtype=float))
        m, n = x0s.shape
        field = _batch_field(system)

        # The exact time grid of the scalar driver, from the one shared
        # schedule (incl. the partial final step).
        times_arr, steps = fixed_step_schedule(duration, dt)
        total_steps = len(steps)

        history = np.empty((total_steps + 1, m, n))
        history[0] = x0s
        #: samples recorded per trajectory (initial state included)
        counts = np.full(m, 1, dtype=int)
        truncated = np.zeros(m, dtype=bool)
        active = np.arange(m)

        for k, h in enumerate(steps, start=1):
            new_states = stepper(field, history[k - 1, active], float(h))
            history[k, active] = new_states

            finite = np.isfinite(new_states).all(axis=1)
            keep = finite.copy()
            # Non-finite states are dropped (native: break before append);
            # blow-ups and stop events keep the final sample.
            recorded = finite.copy()
            if self.blowup_norm is not None:
                blown = finite & (
                    np.linalg.norm(new_states, axis=1) > self.blowup_norm
                )
                keep &= ~blown
            if stop_condition is not None:
                batch_stop = getattr(stop_condition, "batch", None)
                if batch_stop is not None:
                    # Vector-aware condition (e.g. the synthesis loop's
                    # domain-exit test): one array pass for the whole
                    # block, masked to the rows a scalar loop would
                    # have consulted.
                    stopped = keep & np.asarray(batch_stop(new_states), dtype=bool)
                else:
                    stopped = np.array(
                        [
                            bool(stop_condition(state)) if alive else False
                            for state, alive in zip(new_states, keep)
                        ]
                    )
                keep &= ~stopped
            counts[active[recorded]] = k + 1
            truncated[active[~keep]] = True
            active = active[keep]
            if active.size == 0:
                break

        return [
            Trace(
                times_arr[: counts[i]],
                history[: counts[i], i].copy(),
                None,
                bool(truncated[i]),
            )
            for i in range(m)
        ]
