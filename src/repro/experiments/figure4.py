"""Figure 4 — evolution of the NN controller during policy search.

The paper shows four panels: the vehicle's actual path against the
target path (a) with random initial weights, (b) at iteration 5, (c) at
iteration 25, and (d) at the end of training.  This driver trains a
controller with CMA-ES, snapshots it at those iterations, rolls each
snapshot out on the training path, and reports per-panel tracking
metrics — the quantitative content of the figure (tracking error should
shrink monotonically across panels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dynamics import PiecewiseLinearPath
from ..learning import (
    PolicySearchConfig,
    RolloutResult,
    figure4_training_path,
    policy_search,
    rollout,
    training_start_state,
)
from ..nn import FeedforwardNetwork, controller_network

__all__ = ["Figure4Panel", "Figure4Data", "run_figure4", "format_figure4"]


@dataclass
class Figure4Panel:
    """One panel: a controller snapshot rolled out on the training path."""

    label: str
    iteration: int
    rollout: RolloutResult
    mean_abs_distance_error: float
    max_abs_distance_error: float
    final_position_error: float
    cost: float


@dataclass
class Figure4Data:
    """All four panels plus the optimizer's cost history."""

    panels: list[Figure4Panel]
    cost_history: list[float]
    path: PiecewiseLinearPath
    trained_network: FeedforwardNetwork


def run_figure4(
    hidden_neurons: int = 10,
    seed: int = 0,
    population_size: int = 24,
    max_iterations: int = 30,
    snapshot_iterations: Sequence[int] = (5, 25),
    steps: int = 520,
    dt: float = 0.35,
) -> Figure4Data:
    """Train and snapshot, then roll out each snapshot.

    Paper settings are ``population_size=152, max_iterations=50``; the
    defaults here keep the experiment minutes-scale while preserving the
    qualitative evolution (pass the paper values to match exactly).
    """
    path = figure4_training_path()
    start = training_start_state(path)
    rng = np.random.default_rng(seed)
    network = controller_network(hidden_neurons, rng=rng)

    config = PolicySearchConfig(
        steps=steps,
        dt=dt,
        population_size=population_size,
        max_iterations=max_iterations,
        seed=seed,
        snapshot_iterations=tuple(
            i for i in snapshot_iterations if i <= max_iterations
        ),
    )
    result = policy_search(network, path, start, config)

    stages: list[tuple[str, int, FeedforwardNetwork]] = [
        ("random initial weights", 0, result.initial_network)
    ]
    for iteration in sorted(result.snapshots):
        stages.append(
            (f"iteration {iteration}", iteration, result.snapshots[iteration])
        )
    stages.append(("end of training", result.cmaes.iterations, result.network))

    panels = []
    for label, iteration, snapshot in stages:
        run = rollout(snapshot, path, start, steps=steps, dt=dt)
        panels.append(
            Figure4Panel(
                label=label,
                iteration=iteration,
                rollout=run,
                mean_abs_distance_error=float(np.mean(np.abs(run.d_errs))),
                max_abs_distance_error=float(np.max(np.abs(run.d_errs))),
                final_position_error=float(
                    np.linalg.norm(run.states[-1, :2] - path.end_point)
                ),
                cost=run.cost,
            )
        )
    return Figure4Data(
        panels=panels,
        cost_history=result.cmaes.history,
        path=path,
        trained_network=result.network,
    )


def format_figure4(data: Figure4Data) -> str:
    """Tabular rendering of the per-panel tracking metrics."""
    header = (
        f"{'Panel':<24} {'Iter':>5} {'mean|derr|':>11} {'max|derr|':>10} "
        f"{'end-error':>10} {'cost J':>12}"
    )
    lines = [header, "-" * len(header)]
    for panel in data.panels:
        lines.append(
            f"{panel.label:<24} {panel.iteration:>5d} "
            f"{panel.mean_abs_distance_error:>11.3f} "
            f"{panel.max_abs_distance_error:>10.3f} "
            f"{panel.final_position_error:>10.3f} {panel.cost:>12.1f}"
        )
    return "\n".join(lines)
