"""Outward-rounding helpers for sound interval arithmetic.

IEEE-754 floating point rounds to nearest by default, so a naively
computed interval bound can land strictly inside the true bound.  To keep
enclosures sound we widen every computed bound by one unit in the last
place (ulp) using :func:`math.nextafter`.  This is slightly looser than
switching the FPU rounding mode but is portable, branch-free, and — for
the verification queries in this library — the extra ulp is negligible
compared to the solver precision ``delta``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "PAD",
    "TRIG_SLACK",
    "next_down",
    "next_down_array",
    "next_up",
    "next_up_array",
    "round_down",
    "round_up",
    "trig_slack",
    "widen",
]

_INF = math.inf

#: Relative slack used when locating trig critical points and poles: the
#: float representation of pi is inexact, so containment tests are
#: inflated by ``TRIG_SLACK * (1 + magnitude)``.  This is the single
#: source of truth shared by the scalar :class:`~repro.intervals.Interval`,
#: the batched :class:`~repro.intervals.IntervalArray`, and the compiled
#: tape semantics of :mod:`repro.expr.compile` — keeping the three
#: implementations' critical-point decisions bit-identical.
TRIG_SLACK = 1e-12

#: Relative padding applied by backward (inverse) contractor rules whose
#: inverses go through transcendental kernels; shared by the scalar and
#: frontier-vectorized HC4 implementations.
PAD = 1e-12


def trig_slack(magnitude):
    """Absolute slack for trig critical-point tests at a given magnitude.

    Accepts a float or an ndarray of magnitudes; the formula is the
    shared definition used by every interval implementation in the
    package.
    """
    return TRIG_SLACK * (1.0 + magnitude)


def next_down(value: float) -> float:
    """Return the largest float strictly below ``value`` (identity at -inf)."""
    if value == -_INF or math.isnan(value):
        return value
    return math.nextafter(value, -_INF)


def next_up(value: float) -> float:
    """Return the smallest float strictly above ``value`` (identity at +inf)."""
    if value == _INF or math.isnan(value):
        return value
    return math.nextafter(value, _INF)


def round_down(value: float, exact: bool = False) -> float:
    """Lower bound after a possibly inexact operation.

    ``exact=True`` skips the widening for operations known to be exact in
    floating point (negation, multiplication by powers of two, copies).
    """
    if exact:
        return value
    return next_down(value)


def round_up(value: float, exact: bool = False) -> float:
    """Upper bound after a possibly inexact operation (see :func:`round_down`)."""
    if exact:
        return value
    return next_up(value)


def widen(lower: float, upper: float) -> tuple[float, float]:
    """Widen both endpoints outward by one ulp each."""
    return next_down(lower), next_up(upper)


def next_down_array(values: np.ndarray, ulps: int = 1) -> np.ndarray:
    """Vectorized :func:`next_down`: ``ulps`` steps toward ``-inf``.

    ``np.nextafter`` matches ``math.nextafter`` bit-for-bit (identity at
    ``-inf``, NaN passthrough), so one step reproduces the scalar
    rounding exactly.  ``ulps=2`` is used by the array ops whose NumPy
    kernels (pow, exp, log, tan, tanh, sigmoid, atan) may differ from the
    libm scalars by up to one ulp — the extra step keeps the array result
    a superset of the scalar one.
    """
    out = values
    for _ in range(ulps):
        out = np.nextafter(out, -_INF)
    return out


def next_up_array(values: np.ndarray, ulps: int = 1) -> np.ndarray:
    """Vectorized :func:`next_up` (see :func:`next_down_array`)."""
    out = values
    for _ in range(ulps):
        out = np.nextafter(out, _INF)
    return out
