"""Mid-write crash semantics: tmp-write → rename must be atomic.

The satellite contract: a writer killed between the tmp write and the
rename leaves *no* partial entry (readers never observe torn bytes),
the orphaned ``.tmp`` file is swept by garbage collection, and a re-put
of the same key succeeds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.api.family import get_family
from repro.api.runner import derive_scenario_seed
from repro.errors import InjectedFault
from repro.resilience import faults
from repro.resilience.faults import FaultAction, FaultPlan
from repro.store import ArtifactStore, run_key


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def artifact_and_key():
    scenario = get_family("linear").instantiate()
    config = dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(0, scenario.name)
    )
    artifact = api.run(scenario, config=config, cache=False)
    return artifact, run_key(scenario, config, artifact.engine)


def _tmp_files(root):
    return sorted(root.rglob(".*.tmp"))


class TestTornWrite:
    def test_crash_between_tmp_and_rename(self, tmp_path, artifact_and_key):
        artifact, key = artifact_and_key
        store = ArtifactStore(tmp_path)
        plan = FaultPlan((FaultAction("store.write", "torn", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                store.put(key, artifact)

        # No partial entry is ever visible to readers.
        assert store.get(key) is None
        assert store.stats().artifacts == 0
        # The crashed writer's tmp debris is still on disk...
        assert len(_tmp_files(tmp_path)) == 1

        # ...until garbage collection sweeps it.
        assert store.collect_garbage(max_age_seconds=0.0) == 1
        assert _tmp_files(tmp_path) == []

    def test_re_put_after_crash_succeeds(self, tmp_path, artifact_and_key):
        artifact, key = artifact_and_key
        store = ArtifactStore(tmp_path)
        plan = FaultPlan((FaultAction("store.write", "torn", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                store.put(key, artifact)
        store.put(key, artifact)
        revived = store.get(key)
        assert revived is not None
        assert revived.level == artifact.level
        assert revived.verified == artifact.verified
        # The successful put swept no young-enough debris by itself, but
        # an explicit GC must find nothing left to do either way.
        store.collect_garbage(max_age_seconds=0.0)
        assert _tmp_files(tmp_path) == []

    def test_fresh_tmp_of_concurrent_writer_is_spared(self, tmp_path, artifact_and_key):
        artifact, key = artifact_and_key
        store = ArtifactStore(tmp_path)
        plan = FaultPlan((FaultAction("store.write", "torn", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                store.put(key, artifact)
        # Default TTL: a young tmp file may be a live writer's — spared.
        assert store.collect_garbage() == 0
        assert len(_tmp_files(tmp_path)) == 1

    def test_error_kind_cleans_its_tmp(self, tmp_path, artifact_and_key):
        """The ``error`` kind models a failed write, not a crash: the
        writer is still alive to clean up, so no debris is left."""
        artifact, key = artifact_and_key
        store = ArtifactStore(tmp_path)
        plan = FaultPlan((FaultAction("store.write", "error", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                store.put(key, artifact)
        assert store.get(key) is None
        assert _tmp_files(tmp_path) == []


class TestTornRead:
    def test_garbage_read_surfaces_as_typed_error(self, tmp_path, artifact_and_key):
        artifact, key = artifact_and_key
        store = ArtifactStore(tmp_path)
        store.put(key, artifact)
        plan = FaultPlan((FaultAction("store.read", "error", at=0),))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                store.get(key)
        # Fault cleared: the entry is intact.
        assert store.get(key) is not None
