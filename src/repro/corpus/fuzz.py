"""Differential fuzzing over the scenario-family parameter space.

The harness samples parameter points across every registered family and
asserts, per point, the invariants the rest of the test suite checks
only at family defaults:

``cache-key``    the content-addressed store key is invariant under
                 parameter-dict reordering (canonicalisation holds)
``cross-engine`` every engine agrees on the verdict, and the exact-
                 degrade engines (``batched-icp`` / ``sharded-icp`` /
                 ``portfolio``) agree on the *entire artifact* minus
                 timing fields
``round-trip``   ``RunArtifact`` JSON serialisation round-trips to an
                 identical artifact
``twin``         generated twins (:mod:`repro.corpus.twins`) conform to
                 their expected verdicts when the base point verifies

Every point gets a per-point seed derived from the run seed by name
(:func:`repro.api.derive_scenario_seed`), so a corpus run is
reproducible from ``--seed`` alone and any single point is replayable
in isolation.  On failure the harness *shrinks* the parameter point —
resetting parameters to family defaults and bisecting floats toward
them while the failure reproduces — and emits a machine-readable
reproducer the regression suite (``tests/corpus/test_regressions.py``)
replays forever.

Families tagged ``stress`` (cartpole, quadrotor) deliberately defeat
the quadratic template and carry heavy budgets; they get only the
cheap ``cache-key`` invariant so a corpus run stays minutes, not hours.

Two invariants get a short *deflake ladder* (retry under derived
seeds) because the synthesis procedure is incomplete and CEGIS paths
are seed-dependent at verify/no-candidate phase boundaries: cross-
engine *status* agreement, and preserving-twin conformance.  The
soundness-backed invariants — artifact parity inside the exact-degrade
trio, flipping-twin non-verification, cache keys, JSON round-trips —
are never retried: one miss is a failure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = [
    "CHECK_KINDS",
    "DEFAULT_ENGINES",
    "FUZZ_CLAMPS",
    "FuzzFailure",
    "FuzzReport",
    "CROSS_ENGINE_RETRY_SEEDS",
    "STRICT_PARITY_ENGINES",
    "TWIN_RETRY_SEEDS",
    "VOLATILE_FIELDS",
    "check_point",
    "fuzz",
    "load_regressions",
    "replay_failure",
    "sample_corpus_point",
    "shrink_failure",
    "write_regression",
]

#: the invariants a point is checked against, in execution order
CHECK_KINDS = ("cache-key", "cross-engine", "round-trip", "twin")

#: engines every sampled point runs under
DEFAULT_ENGINES = ("native", "batched-icp", "sharded-icp", "portfolio")

#: engines whose artifacts must match field-for-field (exact degrade)
STRICT_PARITY_ENGINES = frozenset(
    {"batched-icp", "sharded-icp", "portfolio"}
)

#: artifact fields that cannot match across engines by construction
VOLATILE_FIELDS = frozenset(
    {
        "engine",
        "lp_seconds",
        "query_seconds",
        "generator_seconds",
        "other_seconds",
        "total_seconds",
        "stage_seconds",
    }
)

#: seeds tried before a non-verified *preserving* twin counts as a
#: failure (candidate fitting is seed-dependent; soundness is not)
TWIN_RETRY_SEEDS = 3

#: seeds tried before a cross-engine *status* disagreement counts as a
#: failure.  Native and batched stacks promise identical verdicts only
#: where CEGIS takes the same path; at a verify/no-candidate phase
#: boundary the engines' different witness orders can tip different
#: candidate sequences.  A systematically wrong engine disagrees at
#: every seed and is still caught; artifact parity inside the
#: exact-degrade trio is never retried — it must hold at every seed.
CROSS_ENGINE_RETRY_SEEDS = 3

#: per-family bounds the fuzzer narrows sampling to (a 64-neuron
#: controller is a legitimate grid point but a terrible fuzz budget)
FUZZ_CLAMPS: "dict[str, dict[str, tuple[float, float]]]" = {
    "dubins": {"nn_width": (2, 16)},
    "dubins-nn": {"nn_width": (2, 16)},
}


@dataclass(frozen=True)
class FuzzFailure:
    """One falsified invariant, with everything needed to replay it."""

    #: which invariant broke (one of :data:`CHECK_KINDS`)
    kind: str
    #: family registry name
    family: str
    #: the (possibly shrunk) parameter point
    params: "dict[str, float | int | str]"
    #: the corpus run seed the per-point seed derives from
    seed: int
    #: engines the point ran under
    engines: "tuple[str, ...]"
    #: human-readable account of the mismatch
    detail: str
    #: twin mutation name when ``kind == "twin"``
    mutation: "str | None" = None
    #: True once :func:`shrink_failure` minimised the point
    shrunk: bool = False

    def digest(self) -> str:
        """Stable short id over (kind, family, params, seed)."""
        payload = json.dumps(
            {
                "kind": self.kind,
                "family": self.family,
                "params": dict(sorted(self.params.items())),
                "seed": self.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["engines"] = list(self.engines)
        data["digest"] = self.digest()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzFailure":
        return cls(
            kind=data["kind"],
            family=data["family"],
            params=dict(data["params"]),
            seed=int(data["seed"]),
            engines=tuple(data["engines"]),
            detail=data.get("detail", ""),
            mutation=data.get("mutation"),
            shrunk=bool(data.get("shrunk", False)),
        )


@dataclass
class FuzzReport:
    """Outcome of one corpus run."""

    seed: int
    samples: int
    checked: int = 0
    skipped_stress: int = 0
    failures: "list[FuzzFailure]" = field(default_factory=list)
    #: regression files written (one per failure, when a dir was given)
    written: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "samples": self.samples,
            "checked": self.checked,
            "skipped_stress": self.skipped_stress,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
            "written": list(self.written),
        }

    def format(self) -> str:
        lines = [
            f"fuzz: {self.checked}/{self.samples} points checked "
            f"(seed {self.seed}, {self.skipped_stress} stress points "
            "on the cheap tier)"
        ]
        for failure in self.failures:
            params = ", ".join(
                f"{k}={v}" for k, v in sorted(failure.params.items())
            )
            suffix = f" mutation={failure.mutation}" if failure.mutation else ""
            lines.append(
                f"  FAIL [{failure.kind}] {failure.family}[{params}]"
                f"{suffix}: {failure.detail}"
            )
        for path in self.written:
            lines.append(f"  reproducer written: {path}")
        if self.ok:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _point_config(scenario, run_seed: int):
    """The scenario's config with the per-point derived seed folded in."""
    from ..api.runner import derive_scenario_seed

    return dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(run_seed, scenario.name)
    )


def _strippable_dict(artifact) -> dict:
    """Artifact dict minus fields that legitimately differ per engine."""
    data = artifact.to_dict()
    for volatile in VOLATILE_FIELDS:
        data.pop(volatile, None)
    if isinstance(data.get("config"), dict):
        data["config"].pop("engine", None)
    return data


def check_point(
    family_name: str,
    params: "dict[str, float | int | str]",
    seed: int,
    engines: "tuple[str, ...]" = DEFAULT_ENGINES,
    twins: bool = True,
    kinds: "tuple[str, ...] | None" = None,
) -> "FuzzFailure | None":
    """Check every fuzz invariant at one parameter point.

    Returns the first falsified invariant as a :class:`FuzzFailure`, or
    ``None`` when the point holds.  ``kinds`` restricts the checks run
    (replay uses it to re-run exactly the failed invariant).  Families
    tagged ``stress`` only ever get the ``cache-key`` check.
    """
    from ..api import get_family, run
    from .twins import conforms, generate_twins

    family = get_family(family_name)
    active = kinds if kinds is not None else CHECK_KINDS
    for kind in active:
        if kind not in CHECK_KINDS:
            known = ", ".join(CHECK_KINDS)
            raise ReproError(f"unknown check kind {kind!r} (kinds: {known})")
    scenario = family.instantiate(**params)
    config = _point_config(scenario, seed)

    def fail(kind: str, detail: str, mutation: "str | None" = None):
        return FuzzFailure(
            kind=kind,
            family=family_name,
            params=dict(params),
            seed=seed,
            engines=tuple(engines),
            detail=detail,
            mutation=mutation,
        )

    if "cache-key" in active:
        from ..store import run_key

        reordered = family.instantiate(
            **dict(reversed(list(params.items())))
        )
        key = run_key(scenario, config, engines[0])
        key2 = run_key(reordered, config, engines[0])
        if key != key2:
            return fail(
                "cache-key",
                "store key depends on parameter-dict ordering: "
                f"{key[:16]}… != {key2[:16]}…",
            )

    if "stress" in family.tags:
        # heavy budgets / template-defeating by design: engine runs and
        # twins would dominate the corpus wall-clock for no signal
        return None

    needs_runs = {"cross-engine", "round-trip", "twin"} & set(active)
    if not needs_runs:
        return None

    from ..api.runner import derive_scenario_seed

    base_engine = "batched-icp" if "batched-icp" in engines else engines[0]
    if needs_runs == {"twin"}:
        # twin replay/shrink only ever consults the base engine
        engines_to_run: "tuple[str, ...]" = (base_engine,)
    else:
        engines_to_run = tuple(engines)

    attempts = (
        CROSS_ENGINE_RETRY_SEEDS
        if "cross-engine" in active and len(engines_to_run) > 1
        else 1
    )
    artifacts: dict = {}
    disagreement = None
    for attempt in range(attempts):
        attempt_config = config
        if attempt:
            attempt_config = dataclasses.replace(
                config,
                seed=derive_scenario_seed(
                    seed, f"{scenario.name}#retry{attempt}"
                ),
            )
        artifacts = {
            name: run(scenario, config=attempt_config, engine=name, cache=False)
            for name in engines_to_run
        }
        if "cross-engine" not in active:
            break
        # artifact parity inside the exact-degrade trio holds at EVERY
        # seed — a mismatch is a hard failure, never a flake
        strict = [n for n in engines_to_run if n in STRICT_PARITY_ENGINES]
        if len(strict) > 1:
            reference = _strippable_dict(artifacts[strict[0]])
            for name in strict[1:]:
                candidate = _strippable_dict(artifacts[name])
                if candidate != reference:
                    diff = [
                        key
                        for key in reference
                        if candidate.get(key) != reference.get(key)
                    ]
                    return fail(
                        "cross-engine",
                        f"artifact parity broke between {strict[0]} and "
                        f"{name} in fields: {', '.join(diff) or '?'}",
                    )
        statuses = {name: a.status for name, a in artifacts.items()}
        if len(set(statuses.values())) == 1:
            disagreement = None
            break
        disagreement = ", ".join(
            f"{name}={status}" for name, status in sorted(statuses.items())
        )
    if disagreement is not None:
        return fail(
            "cross-engine",
            f"verdicts disagree at {attempts} seeds: {disagreement}",
        )

    if "round-trip" in active:
        from ..api.runner import RunArtifact

        for name, artifact in artifacts.items():
            revived = RunArtifact.from_json(artifact.to_json())
            if revived.to_dict() != artifact.to_dict():
                return fail(
                    "round-trip",
                    f"JSON round-trip changed the {name} artifact",
                )

    if "twin" in active and twins:
        base = artifacts.get(base_engine)
        if base is not None and base.status == "verified":
            for twin in generate_twins(scenario):
                # Preserving twins assert a certificate *exists*; the
                # synthesis procedure is incomplete and its candidate
                # quality is seed-dependent, so a non-verified outcome
                # gets a short deflake ladder before counting as a
                # failure.  Flipping twins rest on soundness — a single
                # "verified" is a real bug, never retried away.
                retries = TWIN_RETRY_SEEDS if twin.preserving else 1
                artifact = None
                verdict: "bool | None" = False
                for attempt in range(retries):
                    twin_config = _point_config(twin.scenario, seed)
                    if attempt:
                        twin_config = dataclasses.replace(
                            twin_config,
                            seed=derive_scenario_seed(
                                seed, f"{twin.name}#retry{attempt}"
                            ),
                        )
                    artifact = run(
                        twin.scenario,
                        config=twin_config,
                        engine=base_engine,
                        cache=False,
                    )
                    verdict = conforms(twin, artifact.status)
                    if verdict is not False:
                        break
                if verdict is False and artifact is not None:
                    return fail(
                        "twin",
                        f"{twin.mutation} twin expected {twin.expected}, "
                        f"engine returned {artifact.status}",
                        mutation=twin.mutation,
                    )

    return None


def _same_failure(candidate: "FuzzFailure | None", original: FuzzFailure) -> bool:
    if candidate is None:
        return False
    if candidate.kind != original.kind:
        return False
    return candidate.mutation == original.mutation or original.kind != "twin"


def shrink_failure(
    failure: FuzzFailure,
    max_bisections: int = 6,
) -> FuzzFailure:
    """Minimise a failing point while the same invariant keeps failing.

    Two passes: reset each parameter to its family default outright,
    then bisect the surviving floats toward their defaults.  Every
    candidate point is re-checked with only the failed invariant's
    kind, so shrinking costs a handful of runs, not full corpus sweeps.
    """
    from ..api import get_family

    family = get_family(failure.family)
    defaults = {spec.name: spec.default for spec in family.parameters}
    params = dict(failure.params)
    kinds = (failure.kind,)

    def still_fails(candidate_params: dict) -> bool:
        candidate = check_point(
            failure.family,
            candidate_params,
            failure.seed,
            engines=failure.engines,
            twins=failure.kind == "twin",
            kinds=kinds,
        )
        return _same_failure(candidate, failure)

    for name in list(params):
        if name not in defaults or params[name] == defaults[name]:
            continue
        trial = {**params, name: defaults[name]}
        if still_fails(trial):
            params = trial

    for spec in family.parameters:
        name = spec.name
        if spec.kind != "float" or name not in params:
            continue
        target = defaults.get(name)
        if target is None or params[name] == target:
            continue
        for _ in range(max_bisections):
            midpoint = (float(params[name]) + float(target)) / 2.0
            trial = {**params, name: midpoint}
            if not still_fails(trial):
                break
            params = trial

    return dataclasses.replace(failure, params=params, shrunk=True)


def write_regression(
    failure: FuzzFailure, directory: "str | pathlib.Path"
) -> pathlib.Path:
    """Persist one failure as a replayable JSON reproducer."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{failure.family}-{failure.kind}-{failure.digest()}.json"
    path.write_text(json.dumps(failure.to_dict(), indent=2, sort_keys=True))
    return path


def load_regressions(
    directory: "str | pathlib.Path",
) -> "list[tuple[pathlib.Path, FuzzFailure]]":
    """Read every checked-in reproducer (sorted, empty-dir safe)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        out.append((path, FuzzFailure.from_dict(json.loads(path.read_text()))))
    return out


def replay_failure(failure: "FuzzFailure | dict") -> "FuzzFailure | None":
    """Re-run exactly the invariant a reproducer captured.

    Returns ``None`` when the invariant now holds (the bug is fixed or
    the reproducer is stale) and the fresh :class:`FuzzFailure` when it
    still reproduces.
    """
    if isinstance(failure, dict):
        failure = FuzzFailure.from_dict(failure)
    return check_point(
        failure.family,
        failure.params,
        failure.seed,
        engines=failure.engines,
        twins=failure.kind == "twin",
        kinds=(failure.kind,),
    )


def _clamped(family, point: dict) -> dict:
    clamps = FUZZ_CLAMPS.get(family.name, {})
    for name, (low, high) in clamps.items():
        if name in point:
            spec = family.spec(name)
            clipped = min(max(point[name], low), high)
            point[name] = spec.coerce(clipped)
    return point


def sample_corpus_point(
    family_name: str, index: int, seed: int
) -> "dict[str, float | int | str]":
    """One clamped, reproducible corpus parameter point.

    The sampling rule the fuzz campaign uses for point ``index`` of a
    run with ``seed`` — exported so the chaos harness walks the exact
    same corpus the differential fuzzer does.
    """
    from ..api import get_family
    from ..api.runner import derive_scenario_seed

    family = get_family(family_name)
    point_seed = derive_scenario_seed(seed, f"{family.name}#{index}")
    return _clamped(family, family.sample(1, seed=point_seed)[0])


def fuzz(
    samples: int = 50,
    seed: int = 0,
    families: "tuple[str, ...] | None" = None,
    engines: "tuple[str, ...]" = DEFAULT_ENGINES,
    twins: bool = True,
    shrink: bool = True,
    regressions_dir: "str | pathlib.Path | None" = None,
    progress=None,
) -> FuzzReport:
    """Run a differential fuzz campaign over the family registry.

    Points rotate round-robin across ``families`` (default: every
    registered family); each point samples its parameters with a seed
    derived from ``seed`` and the point's position, so campaigns are
    reproducible and individual points replay in isolation.  Failures
    are shrunk (unless ``shrink=False``) and written as reproducers
    under ``regressions_dir`` when one is given.
    """
    from ..api import family_names, get_family

    if samples < 1:
        raise ReproError("need at least one sample")
    names = tuple(families) if families else family_names()
    loaded = [get_family(name) for name in names]
    report = FuzzReport(seed=seed, samples=samples)
    for index in range(samples):
        family = loaded[index % len(loaded)]
        point = sample_corpus_point(family.name, index, seed)
        if progress is not None:
            params = ", ".join(f"{k}={v}" for k, v in sorted(point.items()))
            progress(f"[{index + 1}/{samples}] {family.name}[{params}]")
        failure = check_point(
            family.name, point, seed, engines=engines, twins=twins
        )
        report.checked += 1
        if "stress" in family.tags:
            report.skipped_stress += 1
        if failure is None:
            continue
        if shrink:
            if progress is not None:
                progress(f"  FAIL [{failure.kind}] — shrinking…")
            failure = shrink_failure(failure)
        report.failures.append(failure)
        if regressions_dir is not None:
            path = write_regression(failure, regressions_dir)
            report.written.append(str(path))
    return report
