"""High-level training entry points and reference controllers.

Two ways to obtain a controller:

* :func:`train_paper_controller` — the paper's pipeline: CMA-ES policy
  search over a randomly initialized tansig network against the
  piecewise-linear training path (Figure 4).
* :func:`proportional_controller_network` — a *hand-constructed* tansig
  network implementing a saturating proportional law
  ``u = (kd/c)·tanh(c·d_err) + (kt/c)·tanh(c·theta_err)``.

The hand-constructed network matters for reproducibility: the paper's
Table 1 measures *verification* cost as a function of network size, not
training provenance.  Scaling a trained 10-neuron policy to 1000 neurons
by re-training each size would dominate the benchmark wall-clock without
changing what is being measured, so the Table 1 harness verifies
hand-constructed networks of each size by default (and can train instead
when asked).  For any number of hidden neurons the constructed network
computes the same function, so verification difficulty scales purely
with network size — exactly the paper's experimental axis.
"""

from __future__ import annotations

import numpy as np

from ..dynamics import PiecewiseLinearPath
from ..errors import TrainingError
from ..nn import FeedforwardNetwork, Layer, controller_network, get_activation
from .policy import PolicySearchConfig, PolicySearchResult, policy_search

__all__ = [
    "figure4_training_path",
    "training_start_state",
    "train_paper_controller",
    "proportional_controller_network",
]


def figure4_training_path() -> PiecewiseLinearPath:
    """The piecewise-linear training path used for Figure 4.

    The paper shows (but does not tabulate) a blue piecewise-linear path
    spanning roughly x, y in [0, 120]; these waypoints match its shape:
    northbound start, eastward doglegs, and a northern finish.
    """
    return PiecewiseLinearPath(
        [
            (0.0, 0.0),
            (10.0, 25.0),
            (35.0, 40.0),
            (60.0, 40.0),
            (80.0, 60.0),
            (90.0, 85.0),
            (110.0, 100.0),
        ]
    )


def training_start_state(path: PiecewiseLinearPath) -> np.ndarray:
    """Vehicle pose at the path start, aligned with the first segment."""
    first = path.waypoints[0]
    direction = path.waypoints[1] - path.waypoints[0]
    theta = float(np.arctan2(direction[0], direction[1]))
    return np.array([first[0], first[1], theta])


def train_paper_controller(
    hidden_neurons: int = 10,
    seed: int = 0,
    population_size: int = 24,
    max_iterations: int = 30,
    snapshot_iterations: tuple[int, ...] = (),
    path: PiecewiseLinearPath | None = None,
    steps: int = 520,
    dt: float = 0.35,
    speed: float = 1.0,
) -> PolicySearchResult:
    """Train a tansig controller with CMA-ES direct policy search.

    Paper settings: ``hidden_neurons=10, population_size=152,
    max_iterations=50`` — expensive; the defaults here are scaled for
    interactive use while preserving the learning dynamics.
    """
    rng = np.random.default_rng(seed)
    network = controller_network(hidden_neurons, rng=rng)
    path = path or figure4_training_path()
    start = training_start_state(path)
    config = PolicySearchConfig(
        steps=steps,
        dt=dt,
        speed=speed,
        population_size=population_size,
        max_iterations=max_iterations,
        seed=seed,
        snapshot_iterations=snapshot_iterations,
    )
    return policy_search(network, path, start, config)


def proportional_controller_network(
    hidden_neurons: int = 10,
    d_gain: float = 0.6,
    theta_gain: float = 2.0,
    squash: float = 0.25,
    hidden_activation: str = "tansig",
) -> FeedforwardNetwork:
    """A saturating proportional controller as a width-``Nh`` tansig net.

    Hidden neurons are split between the two inputs; each group's output
    weights are scaled by the group size so the realized control law —

    ``u = (d_gain/squash)·act(squash·d_err) + (theta_gain/squash)·act(squash·theta_err)``

    — is identical for every width.  With the defaults, the linearized
    closed loop of the paper's error dynamics has eigenvalues with
    negative real part (``trace = -theta_gain``, ``det = V·d_gain``), so
    the controller provably stabilizes straight-line tracking.
    """
    if hidden_neurons < 2:
        raise TrainingError("need at least 2 hidden neurons (one per input)")
    if squash <= 0:
        raise TrainingError("squash must be positive")
    activation = get_activation(hidden_activation)

    n_d = hidden_neurons // 2
    n_t = hidden_neurons - n_d
    w1 = np.zeros((hidden_neurons, 2))
    w1[:n_d, 0] = squash
    w1[n_d:, 1] = squash
    b1 = np.zeros(hidden_neurons)
    w2 = np.zeros((1, hidden_neurons))
    w2[0, :n_d] = d_gain / (squash * n_d)
    w2[0, n_d:] = theta_gain / (squash * n_t)
    b2 = np.zeros(1)
    return FeedforwardNetwork(
        [
            Layer(w1, b1, activation),
            Layer(w2, b2, get_activation("linear")),
        ]
    )
