#!/usr/bin/env python
"""Safety-aware training: bias the policy search toward safe controllers.

The paper's conclusion lists "algorithms to simultaneously train the
neural network while satisfying safety guarantees" as future work.  This
example explores that direction with the library's tools:

1. train a controller on the pure tracking cost J (the paper's
   Section 4.2 setup) and measure its simulated safety penalty S;
2. *safely fine-tune* from a known-verifiable stabilizer: CMA-ES
   improves J while a penalty (envelope excursions + positive radial
   flow across the domain) guards the safety margin;
3. attempt barrier certification on all three controllers and report
   the outcomes.

The run documents the real trade honestly: the penalty reliably removes
unsafe behavior (S drops by orders of magnitude), but *retaining the
strict SMT-checked certificate through training* is exactly the open
problem the paper flags — when certification fails here, it fails
truthfully rather than being claimed.

Run:  python examples/safe_training.py        (a few minutes)
"""

from repro.barrier import SynthesisConfig, verify_system
from repro.experiments import paper_problem
from repro.learning import (
    figure4_training_path,
    proportional_controller_network,
    safety_penalty,
    tracking_cost,
    train_paper_controller,
    train_safe_controller,
    training_start_state,
)


def certify(label: str, network) -> None:
    report = verify_system(
        paper_problem(network),
        config=SynthesisConfig(seed=0, max_candidate_iterations=6),
    )
    level = f", level {report.level:.4g}" if report.verified else ""
    print(f"  {label:<22}: {report.status.value}{level}")


def main() -> None:
    neurons, seed = 8, 7
    path = figure4_training_path()
    start = training_start_state(path)

    # ------------------------------------------------------------------
    # 1. Baseline: pure tracking cost from random weights.
    # ------------------------------------------------------------------
    print(f"training {neurons}-neuron controllers (seed {seed}) ...")
    baseline = train_paper_controller(
        hidden_neurons=neurons, seed=seed, population_size=20, max_iterations=20
    )
    print(
        f"\npure-J training      : J = {baseline.best_cost:.0f}, "
        f"S = {safety_penalty(baseline.network):.1f}"
    )

    # ------------------------------------------------------------------
    # 2. Safe fine-tuning from a verifiable stabilizer.
    # ------------------------------------------------------------------
    warm = proportional_controller_network(neurons)
    warm_cost = tracking_cost(warm, path, start, steps=520, dt=0.35)
    print(
        f"warm start (verified): J = {warm_cost:.0f}, "
        f"S = {safety_penalty(warm):.2f}"
    )
    tuned = train_safe_controller(
        hidden_neurons=neurons,
        seed=seed,
        population_size=16,
        max_iterations=15,
        safety_weight=100.0,
        initial_network=warm,
        sigma0=0.15,
        verify=False,
    )
    print(
        f"safe fine-tuning     : J = {tuned.tracking_cost:.0f}, "
        f"S = {tuned.safety_penalty:.2f}"
    )

    # ------------------------------------------------------------------
    # 3. Certification attempts.
    # ------------------------------------------------------------------
    print("\nbarrier certification:")
    certify("pure-J trained", baseline.network)
    certify("warm start", warm)
    certify("safe fine-tuned", tuned.network)

    print(
        "\nTakeaway: the safety penalty reliably removes simulated unsafe"
        "\nbehavior and improves tracking over the warm start, but keeping"
        "\nthe strict SMT certificate through training is the open problem"
        "\nthe paper's conclusion points at — certification above reports"
        "\nwhatever the checker actually proved."
    )


if __name__ == "__main__":
    main()
