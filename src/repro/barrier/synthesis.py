"""The paper's verification procedure (Figure 1), end to end.

``verify_system`` runs:

1. **Seed simulations** ``Φs`` from random initial states in the domain.
2. **Solve LP** for a candidate generator function ``W``.
3. **SMT check (5)** — the Lie-derivative condition over ``D \\ X0``.
   A δ-SAT witness becomes a counterexample: simulate ``Φf`` from it,
   add the trace to the constraint pool, re-solve the LP, repeat.
4. **Level set** — closed-form bounds, then SMT checks (6) & (7) with a
   binary search over the level on failure.
5. On success, halt with a proven :class:`BarrierCertificate`.

Every stage is timed into :class:`SynthesisReport` with exactly the
breakdown Table 1 reports (candidate iterations, LP seconds, SMT-query
seconds, other, total).

Every solver invocation — trace generation, LP fitting, δ-SAT checking —
goes through the backend protocols of :mod:`repro.engine`; which stack
runs is selected by ``SynthesisConfig.engine`` (or the ``engine``
argument of :func:`verify_system`), ``"native"`` by default.
"""

from __future__ import annotations

import contextlib
import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from ..errors import InfeasibleLPError, LevelSetError, SynthesisError
from ..sim import Trace, sample_uniform
from ..smt import IcpConfig, SmtResult, Verdict
from .certificate import (
    BarrierCertificate,
    VerificationProblem,
    condition5_subproblems,
    condition6_subproblems,
    condition7_subproblems,
)
from .levelset import level_bounds, quadratic_forms
from .lp import GeneratorCandidate, LpConfig, points_from_traces
from .sets import Rectangle
from .templates import GeneratorTemplate, QuadraticTemplate

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engine import Engine

__all__ = [
    "PIPELINE_STAGES",
    "StageEvent",
    "StageObserver",
    "SynthesisStatus",
    "SynthesisConfig",
    "SynthesisReport",
    "verify_system",
]

#: the named stages of the Figure-1 procedure, in execution order:
#: ``seed-sim`` (trace generation, incl. counterexample traces),
#: ``lp-fit`` (candidate generation), ``smt-check`` (check (5)),
#: ``level-set`` (level selection incl. checks (6)/(7)).
PIPELINE_STAGES = ("seed-sim", "lp-fit", "smt-check", "level-set")


@dataclass(frozen=True)
class StageEvent:
    """One boundary of a named pipeline stage.

    ``kind`` is ``"start"`` or ``"end"``; ``iteration`` is the candidate
    iteration the stage belongs to (0 for pre-loop work); ``seconds`` is
    the stage's elapsed wall time (end events only).
    """

    stage: str
    kind: str
    iteration: int = 0
    seconds: float = 0.0


#: callback receiving a :class:`StageEvent` at each stage boundary
StageObserver = Callable[[StageEvent], None]


class SynthesisStatus(enum.Enum):
    """Terminal state of the synthesis procedure."""

    VERIFIED = "verified"
    NO_CANDIDATE = "no-candidate"  # LP infeasible or CEX loop exhausted
    NO_LEVEL_SET = "no-level-set"  # no level passed checks (6)/(7)
    INCONCLUSIVE = "inconclusive"  # solver budget exhausted (UNKNOWN)


@dataclass
class SynthesisConfig:
    """All knobs of the Figure-1 procedure, with paper defaults.

    ``gamma`` is the Lie-derivative slack of Eq. (5); the paper uses
    ``1e-6``.  ``delta`` is the δ-SAT precision handed to the solver.
    """

    seed: int = 0
    num_seed_traces: int = 20
    trace_duration: float = 12.0
    trace_dt: float = 0.05
    integrator: str = "rk4"
    gamma: float = 1.0e-6
    max_candidate_iterations: int = 20
    max_levelset_iterations: int = 30
    #: fraction of the feasible level interval at which the search starts;
    #: 0.5 (the center) maximizes slack against δ-weakened failures of
    #: checks (6) and (7) simultaneously
    level_margin: float = 0.5
    lp: LpConfig = field(default_factory=LpConfig)
    icp: IcpConfig = field(default_factory=lambda: IcpConfig(delta=1e-3))
    #: also seed simulations from the initial set corners/center
    seed_from_initial_set: bool = True
    #: try an analytic Lyapunov candidate (linearization) before the
    #: simulation-guided LP; falls back silently if it fails check (5)
    try_lyapunov_first: bool = False
    #: solver stack to run on: a registered engine name from
    #: :mod:`repro.engine` (``"native"``, ``"vectorized"``,
    #: ``"parallel-smt"``, a user-registered name) or an
    #: :class:`~repro.engine.Engine` object (names serialize; objects
    #: flatten to their name in :func:`synthesis_config_to_dict`)
    engine: "str | Engine" = "native"

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise SynthesisError("gamma must be positive")
        if self.num_seed_traces < 1:
            raise SynthesisError("need at least one seed trace")
        if not 0.0 < self.level_margin < 1.0:
            raise SynthesisError("level_margin must be in (0, 1)")


@dataclass
class SynthesisReport:
    """Outcome + the Table-1 timing columns."""

    status: SynthesisStatus
    certificate: BarrierCertificate | None
    candidate: GeneratorCandidate | None
    level: float | None
    #: iterations of the candidate loop (LP + check (5)); Table 1 col. 2
    candidate_iterations: int = 0
    levelset_iterations: int = 0
    #: cumulative seconds in LP solves; Table 1 "LP"
    lp_seconds: float = 0.0
    #: cumulative seconds in SMT check (5); Table 1 "Query"
    query_seconds: float = 0.0
    #: seconds spent finding the generator (LP + query loop); Table 1 col. 2
    generator_seconds: float = 0.0
    #: seconds in everything else (simulation, level set, checks 6-7)
    other_seconds: float = 0.0
    total_seconds: float = 0.0
    #: cumulative wall seconds per named pipeline stage (PIPELINE_STAGES)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    traces_used: int = 0
    counterexamples: list[np.ndarray] = field(default_factory=list)
    #: final verdicts of the three conditions (None if never reached)
    final_check5: SmtResult | None = None
    final_check6: SmtResult | None = None
    final_check7: SmtResult | None = None

    @property
    def verified(self) -> bool:
        """True when a certificate was proven."""
        return self.status is SynthesisStatus.VERIFIED

    def table1_row(self) -> dict[str, float]:
        """The row format of the paper's Table 1."""
        return {
            "avg_iterations": float(self.candidate_iterations),
            "lp_seconds": self.lp_seconds,
            "query_seconds": self.query_seconds,
            "generator_seconds": self.generator_seconds,
            "other_seconds": self.other_seconds,
            "total_seconds": self.total_seconds,
        }


class _StageClock:
    """Times named stage regions, accumulating into the report and
    notifying the observer at each boundary."""

    def __init__(self, report: SynthesisReport, observer: StageObserver | None):
        self._report = report
        self._observer = observer

    @contextlib.contextmanager
    def __call__(self, stage: str, iteration: int = 0) -> Iterator[None]:
        if self._observer is not None:
            self._observer(StageEvent(stage, "start", iteration))
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            seconds = self._report.stage_seconds
            seconds[stage] = seconds.get(stage, 0.0) + elapsed
            if self._observer is not None:
                self._observer(StageEvent(stage, "end", iteration, elapsed))


def verify_system(
    problem: VerificationProblem,
    template: GeneratorTemplate | None = None,
    config: SynthesisConfig | None = None,
    observer: StageObserver | None = None,
    engine: "str | Engine | None" = None,
) -> SynthesisReport:
    """Run the full Figure-1 procedure on a verification problem.

    ``observer`` (optional) receives a :class:`StageEvent` at the start
    and end of every named stage — the hook behind
    :class:`repro.api.VerificationPipeline`'s progress callbacks.

    ``engine`` (a registered name or :class:`~repro.engine.Engine`)
    selects the solver stack; None defers to ``config.engine``.
    """
    # Imported here: repro.engine's builtin backends wrap this package's
    # solvers, so a module-level import would be circular.
    from ..engine import resolve_engine

    config = config or SynthesisConfig()
    engine_obj = resolve_engine(engine if engine is not None else config.engine)
    system = problem.system
    template = template or QuadraticTemplate(system.dimension)
    rng = np.random.default_rng(config.seed)
    t_start = time.perf_counter()

    report = SynthesisReport(
        status=SynthesisStatus.INCONCLUSIVE,
        certificate=None,
        candidate=None,
        level=None,
    )
    stage = _StageClock(report, observer)

    # ------------------------------------------------------------------
    # Stage 1: seed traces Φs.
    # ------------------------------------------------------------------
    with stage("seed-sim"):
        traces = _seed_traces(problem, config, rng, engine_obj)
    report.traces_used = len(traces)

    # ------------------------------------------------------------------
    # Stage 2-3: candidate loop (Solve LP <-> SMT check (5)).
    # ------------------------------------------------------------------
    candidate: GeneratorCandidate | None = None
    names = problem.state_names
    separation = (
        problem.initial_set.vertices(),
        _unsafe_boundary_samples(problem, config.lp.separation_samples),
    )
    assembler = _make_assembler(engine_obj, template, system)
    generator_t0 = time.perf_counter()

    if config.try_lyapunov_first and isinstance(template, QuadraticTemplate):
        with stage("lp-fit"):
            candidate = _try_lyapunov_candidate(problem, config, report, engine_obj)
        if candidate is not None:
            report.generator_seconds = time.perf_counter() - generator_t0
            with stage("level-set"):
                level = _select_level(
                    candidate, problem, config, report, template, engine_obj
                )
            if level is not None:
                report.level = level
                report.status = SynthesisStatus.VERIFIED
                report.candidate = candidate
                report.certificate = BarrierCertificate(
                    candidate.expression,
                    level,
                    problem,
                    config.gamma,
                    template=template,
                    coefficients=candidate.coefficients,
                )
                _finalize(report, t_start, generator_t0)
                return report
            # Level-set selection failed analytically: fall back to the
            # simulation-guided loop below with a fresh report state.
            report.status = SynthesisStatus.INCONCLUSIVE
        candidate = None

    for iteration in range(1, config.max_candidate_iterations + 1):
        report.candidate_iterations = iteration
        with stage("lp-fit", iteration):
            points = points_from_traces(traces)
            lp_t0 = time.perf_counter()
            fit_kwargs = {"separation": separation}
            if assembler is not None:
                fit_kwargs["assembler"] = assembler
            try:
                candidate = engine_obj.lp.fit(
                    template, points, system, config.lp, **fit_kwargs
                )
            except InfeasibleLPError:
                report.lp_seconds += time.perf_counter() - lp_t0
                candidate = None
            else:
                report.lp_seconds += time.perf_counter() - lp_t0
        if candidate is None:
            report.status = SynthesisStatus.NO_CANDIDATE
            _finalize(report, t_start, generator_t0)
            return report

        with stage("smt-check", iteration):
            query_t0 = time.perf_counter()
            result5 = engine_obj.smt.check(
                condition5_subproblems(candidate.expression, problem, config.gamma),
                names,
                config.icp,
            )
            report.query_seconds += time.perf_counter() - query_t0
        report.final_check5 = result5

        if result5.verdict is Verdict.UNSAT:
            break
        if result5.verdict is Verdict.UNKNOWN:
            report.status = SynthesisStatus.INCONCLUSIVE
            _finalize(report, t_start, generator_t0)
            return report
        # δ-SAT: counterexample -> new trace Φf -> refined LP.
        witness = result5.witness
        report.counterexamples.append(witness)
        with stage("seed-sim", iteration):
            traces.append(_simulate_from(problem, witness, config, engine_obj))
        report.traces_used = len(traces)
        candidate = None
    else:
        report.status = SynthesisStatus.NO_CANDIDATE
        _finalize(report, t_start, generator_t0)
        return report
    generator_elapsed = time.perf_counter() - generator_t0
    report.generator_seconds = generator_elapsed

    # ------------------------------------------------------------------
    # Stage 4: level-set selection + checks (6) and (7).
    # ------------------------------------------------------------------
    with stage("level-set"):
        level = _select_level(
            candidate, problem, config, report, template, engine_obj
        )
    if level is None:
        _finalize(report, t_start, generator_t0)
        return report

    report.level = level
    report.status = SynthesisStatus.VERIFIED
    report.candidate = candidate
    report.certificate = BarrierCertificate(
        candidate.expression,
        level,
        problem,
        config.gamma,
        template=template if isinstance(template, QuadraticTemplate) else None,
        coefficients=candidate.coefficients,
    )
    _finalize(report, t_start, generator_t0)
    return report


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _make_assembler(engine: "Engine", template: GeneratorTemplate, system):
    """A per-run incremental LP assembler, when the backend takes one.

    The assembler keyword is part of the :class:`~repro.engine.LpBackend`
    protocol but optional for implementors; inspect once per run instead
    of guessing with try/except inside the candidate loop.
    """
    import inspect

    from .lp import LpAssembler

    try:
        parameters = inspect.signature(engine.lp.fit).parameters
    except (TypeError, ValueError):  # builtins / C-implemented callables
        return None
    if "assembler" not in parameters:
        return None
    return LpAssembler(template, system)


def _seed_traces(
    problem: VerificationProblem,
    config: SynthesisConfig,
    rng: np.random.Generator,
    engine: "Engine",
) -> list[Trace]:
    domain = problem.domain
    starts = [sample_uniform(domain.to_box(), config.num_seed_traces, rng)]
    if config.seed_from_initial_set:
        starts.append(problem.initial_set.vertices())
        starts.append(problem.initial_set.center()[None, :])
    initial_states = np.vstack(starts)

    return engine.sim.simulate(
        problem.system,
        initial_states,
        config.trace_duration,
        config.trace_dt,
        method=config.integrator,
        stop_condition=_DomainExit(domain.inflate(1e-9)),
    )


class _DomainExit:
    """Stop condition "the state left the (inflated) domain".

    Callable per-state like any ``stop_condition``; additionally exposes
    :meth:`batch` so batch simulators (the ``vectorized`` engine) can
    test a whole ``(m, n)`` state block in one array pass instead of
    ``m`` Python calls per step — the dominant seed-sim overhead once
    integration itself is vectorized.
    """

    def __init__(self, rectangle: Rectangle):
        self._rectangle = rectangle

    def __call__(self, state: np.ndarray) -> bool:
        return not self._rectangle.contains(state)

    def batch(self, states: np.ndarray) -> np.ndarray:
        """Row-wise stop mask, identical to mapping ``__call__``."""
        return ~self._rectangle.contains_batch(states)


def _try_lyapunov_candidate(
    problem: VerificationProblem,
    config: SynthesisConfig,
    report: SynthesisReport,
    engine: "Engine",
) -> GeneratorCandidate | None:
    """Analytic candidate from the linearization, gated by check (5).

    The Lyapunov equation's ``Q`` is shaped to the safe rectangle
    (``Q = diag(1 / half_width^2)``): an identity ``Q`` tends to produce
    ellipsoids elongated along the roomy axes, which poke through the
    tight ones before containing ``X0``.
    """
    from .lyapunov import lyapunov_candidate

    safe = problem.unsafe_set.safe_rectangle
    half_widths = 0.5 * (safe.upper - safe.lower)
    try:
        candidate = lyapunov_candidate(
            problem.system, q_matrix=np.diag(1.0 / half_widths**2)
        )
    except SynthesisError:
        return None
    query_t0 = time.perf_counter()
    result = engine.smt.check(
        condition5_subproblems(candidate.expression, problem, config.gamma),
        problem.state_names,
        config.icp,
    )
    report.query_seconds += time.perf_counter() - query_t0
    report.final_check5 = result
    if result.verdict is Verdict.UNSAT:
        return candidate
    return None


def _unsafe_boundary_samples(
    problem: VerificationProblem, per_edge: int
) -> np.ndarray:
    """Grid samples of the unsafe boundary (the safe rectangle's edges).

    These feed the LP's separation constraints: the fitted ``W`` should
    exceed its X0-vertex values everywhere the level set must not reach.
    """
    safe = problem.unsafe_set.safe_rectangle
    n = safe.dimension
    samples = []
    for axis in range(n):
        for bound in (safe.lower[axis], safe.upper[axis]):
            axes = []
            for other in range(n):
                if other == axis:
                    axes.append(np.array([bound]))
                else:
                    axes.append(
                        np.linspace(safe.lower[other], safe.upper[other], per_edge)
                    )
            mesh = np.meshgrid(*axes, indexing="ij")
            samples.append(np.stack([m.ravel() for m in mesh], axis=-1))
    return np.vstack(samples)


def _simulate_from(
    problem: VerificationProblem,
    start: np.ndarray,
    config: SynthesisConfig,
    engine: "Engine",
) -> Trace:
    (trace,) = engine.sim.simulate(
        problem.system,
        np.asarray(start, dtype=float)[None, :],
        config.trace_duration,
        config.trace_dt,
        method=config.integrator,
        stop_condition=_DomainExit(problem.domain.inflate(1e-9)),
    )
    return trace


def _select_level(
    candidate: GeneratorCandidate,
    problem: VerificationProblem,
    config: SynthesisConfig,
    report: SynthesisReport,
    template: GeneratorTemplate,
    engine: "Engine",
) -> float | None:
    """Closed-form bounds, then SMT-confirmed binary search."""
    if not isinstance(template, QuadraticTemplate):
        report.status = SynthesisStatus.NO_LEVEL_SET
        return None
    try:
        l_lo, l_hi = level_bounds(
            template,
            candidate.coefficients,
            problem.initial_set,
            problem.unsafe_set.halfspaces(),
        )
    except LevelSetError:
        report.status = SynthesisStatus.NO_LEVEL_SET
        return None

    names = problem.state_names
    p_matrix, q_vector = quadratic_forms(template, candidate.coefficients)
    eigenvalues = np.linalg.eigvalsh(0.5 * (p_matrix + p_matrix.T))
    if eigenvalues.min() <= 0.0:
        report.status = SynthesisStatus.NO_LEVEL_SET
        return None

    # Start strictly inside the feasible interval; floating-point slack
    # makes the endpoints themselves fragile under δ-weakening.
    low, high = l_lo, l_hi
    margin = config.level_margin * (high - low)
    level = low + margin
    for _ in range(config.max_levelset_iterations):
        report.levelset_iterations += 1
        query_t0 = time.perf_counter()
        result6 = engine.smt.check(
            condition6_subproblems(candidate.expression, problem, level),
            names,
            config.icp,
        )
        result7_subs = condition7_subproblems(
            candidate.expression,
            problem,
            level,
            _bounding_rectangle(template, candidate, level),
        )
        if result7_subs:
            result7 = engine.smt.check(result7_subs, names, config.icp)
        else:
            result7 = SmtResult(Verdict.UNSAT, config.icp.delta)
        report.query_seconds += time.perf_counter() - query_t0
        report.final_check6 = result6
        report.final_check7 = result7

        if result6.is_unsat and result7.is_unsat:
            return level
        if result6.verdict is Verdict.UNKNOWN or result7.verdict is Verdict.UNKNOWN:
            report.status = SynthesisStatus.INCONCLUSIVE
            return None
        if not result6.is_unsat:
            low = level  # level too small: X0 escapes
        if not result7.is_unsat:
            high = level  # level too large: touches U
        if high - low < 1e-12 * max(1.0, abs(high)):
            break
        level = 0.5 * (low + high)
    report.status = SynthesisStatus.NO_LEVEL_SET
    return None


def _bounding_rectangle(
    template: QuadraticTemplate, candidate: GeneratorCandidate, level: float
) -> Rectangle:
    from .levelset import ellipsoid_bounding_rectangle

    p_matrix, q_vector = quadratic_forms(template, candidate.coefficients)
    return ellipsoid_bounding_rectangle(p_matrix, q_vector, level)


def _finalize(report: SynthesisReport, t_start: float, generator_t0: float) -> None:
    report.total_seconds = time.perf_counter() - t_start
    if report.generator_seconds == 0.0:
        report.generator_seconds = max(0.0, time.perf_counter() - generator_t0)
    report.other_seconds = max(
        0.0, report.total_seconds - report.lp_seconds - report.query_seconds
    )
