"""Backoff, circuit breaker state machine, and the incident log."""

from __future__ import annotations

import pytest

from repro.resilience.supervisor import (
    Backoff,
    CircuitBreaker,
    breaker_for,
    clear_incidents,
    incidents,
    record_incident,
    reset_breakers,
)


@pytest.fixture(autouse=True)
def _clean_state():
    reset_breakers()
    clear_incidents()
    yield
    reset_breakers()
    clear_incidents()


class TestBackoff:
    def test_deterministic_per_seed(self):
        a = [Backoff(seed=5).delay(n) for n in range(4)]
        b = [Backoff(seed=5).delay(n) for n in range(4)]
        assert a == b

    def test_caps_and_jitters(self):
        backoff = Backoff(base=0.1, cap=0.4, seed=0)
        for attempt in range(8):
            delay = backoff.delay(attempt)
            raw = min(0.4, 0.1 * 2.0 ** attempt)
            assert 0.5 * raw <= delay <= raw


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        return CircuitBreaker("dep", threshold=threshold, cooldown=cooldown, clock=clock), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # probe slot already claimed

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.allow()  # next probe window

    def test_abandoned_probe_claim_expires(self):
        """A probe that never reports an outcome cannot wedge the breaker."""
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()  # claimed, then the caller vanishes
        assert not breaker.allow()
        clock.now += 10.0  # claim older than one cooldown
        assert breaker.allow()

    def test_trip_and_close_are_incidents(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        breaker.allow()
        breaker.record_success()
        kinds = [e["kind"] for e in incidents()]
        assert kinds == ["breaker.open", "breaker.close"]


class TestRegistryAndIncidents:
    def test_breaker_for_returns_same_instance(self):
        assert breaker_for("solver.z3") is breaker_for("solver.z3")
        assert breaker_for("solver.z3") is not breaker_for("solver.dreal")

    def test_incident_log_is_bounded(self):
        for i in range(600):
            record_incident("test.flood", str(i))
        entries = incidents("test.flood")
        assert len(entries) == 512
        assert entries[-1]["detail"] == "599"

    def test_incident_filter(self):
        record_incident("a.one")
        record_incident("b.two")
        assert [e["kind"] for e in incidents("a.one")] == ["a.one"]
