"""The ``sharded-icp`` engine: registration, reporting, artifact parity.

The acceptance bar for the sharded stack mirrors the portfolio's exact-
degrade contract, but stronger: on every builtin scenario, at **every**
shard count, the run artifact must be byte-identical to
``--engine batched-icp`` in every deterministic field.  The shard knob
is pure execution layout — it never shows up in artifact JSON, store
keys, verdicts, witnesses, or LP coefficients.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import api
from repro.api import get_scenario, scenario_names
from repro.barrier.certificate import condition5_subproblems
from repro.engine import BatchedSmtBackend, ShardedSmtBackend, get_engine
from repro.expr import sum_expr, var
from repro.smt import IcpConfig
from repro.smt.icp_sharded import fork_available

#: RunArtifact fields that cannot match across engines by construction.
_VOLATILE_FIELDS = {
    "engine",
    "lp_seconds",
    "query_seconds",
    "generator_seconds",
    "other_seconds",
    "total_seconds",
    "stage_seconds",
}

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded ICP needs fork"
)


def _artifact_dict(name, config, engine):
    data = api.run(name, config=config, engine=engine, cache=False).to_dict()
    for volatile in _VOLATILE_FIELDS:
        data.pop(volatile)
    data["config"].pop("engine", None)
    return data


def _parity_config(name, shards=None):
    """Same deterministic-trim idiom as the portfolio parity suite."""
    scenario = get_scenario(name)
    config = scenario.config
    if name == "cartpole":
        config = dataclasses.replace(
            config,
            num_seed_traces=2,
            trace_duration=1.0,
            max_candidate_iterations=1,
            max_levelset_iterations=1,
            lp=dataclasses.replace(
                config.lp, max_points=150, separation_samples=8
            ),
            icp=dataclasses.replace(
                config.icp, time_limit=None, max_boxes=5000
            ),
        )
    if shards is not None:
        config = dataclasses.replace(
            config, icp=dataclasses.replace(config.icp, shards=shards)
        )
    return config


# ----------------------------------------------------------------------
# Registration + reporting (repro engines)
# ----------------------------------------------------------------------


class TestRegistration:
    def test_sharded_engine_registered(self):
        engine = get_engine("sharded-icp")
        assert isinstance(engine.smt, ShardedSmtBackend)
        assert "builtin" in engine.tags

    def test_cli_lists_sharded(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "sharded-icp" in out


class TestReporting:
    def test_unset_reports_one_shard_with_hint(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        available, reason = ShardedSmtBackend().availability()
        assert available
        assert "1 shard (REPRO_SHARDS unset)" in reason
        assert "--shards" in reason

    @needs_fork
    def test_env_reports_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        available, reason = ShardedSmtBackend().availability()
        assert available
        assert reason == "4 shards over fork+shared-memory workers"

    def test_explicit_shards_win_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert ShardedSmtBackend(shards=2).resolved_shards() == 2

    def test_describe_carries_shard_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        info = get_engine("sharded-icp").describe()
        assert info["available"] is True
        assert info["shards"] == 1
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert get_engine("sharded-icp").describe()["shards"] == 3

    def test_engines_json_exposes_shards(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert main(["engines", "--json"]) == 0
        by_name = {
            e["name"]: e for e in json.loads(capsys.readouterr().out)
        }
        assert by_name["sharded-icp"]["shards"] == 2
        # Other engines are untouched by the extras merge.
        assert "shards" not in by_name["batched-icp"]


# ----------------------------------------------------------------------
# Check-level parity (cheap, every scenario)
# ----------------------------------------------------------------------


def _check5(name):
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    config = IcpConfig(delta=scenario.config.icp.delta, max_boxes=300_000)
    return subs, problem.state_names, config


@needs_fork
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_check_identical_to_batched(name):
    """Same verdict, witness, and stats counters at 2 shards."""
    subs, names, config = _check5(name)
    sharded = ShardedSmtBackend(shards=2).check(subs, names, config)
    reference = BatchedSmtBackend().check(subs, names, config)
    assert sharded.verdict is reference.verdict
    assert sharded.witness_validated == reference.witness_validated
    if reference.witness is None:
        assert sharded.witness is None
    else:
        np.testing.assert_array_equal(sharded.witness, reference.witness)
    assert dataclasses.replace(sharded.stats, elapsed_seconds=0.0) == (
        dataclasses.replace(reference.stats, elapsed_seconds=0.0)
    )


# ----------------------------------------------------------------------
# Full-run artifact parity (the acceptance bar)
# ----------------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_artifact_identical_to_batched_icp(name):
    """Byte-identical artifacts vs batched-icp on every scenario."""
    sharded = _artifact_dict(name, _parity_config(name, 2), "sharded-icp")
    reference = _artifact_dict(name, _parity_config(name), "batched-icp")
    assert sharded == reference, f"{name}: sharded artifact drifted"


@needs_fork
def test_shard_count_invariance():
    """1, 2, and 4 shards produce the identical artifact (dubins)."""
    artifacts = [
        _artifact_dict("dubins", _parity_config("dubins", n), "sharded-icp")
        for n in (1, 2, 4)
    ]
    assert artifacts[0] == artifacts[1] == artifacts[2]


def test_shards_never_reach_artifact_json():
    """The shard knob is execution layout: invisible in config JSON."""
    from repro.api.scenario import synthesis_config_to_dict

    config = _parity_config("linear", 4)
    data = synthesis_config_to_dict(config)
    assert "shards" not in data["icp"]
    assert synthesis_config_to_dict(_parity_config("linear")) == data


# ----------------------------------------------------------------------
# The portfolio's internal lane shards too
# ----------------------------------------------------------------------


class TestPortfolioLane:
    def test_portfolio_native_lane_is_sharded(self):
        from repro.solvers import PortfolioSmtBackend

        backend = PortfolioSmtBackend()
        assert isinstance(backend._native_backend(), ShardedSmtBackend)

    @needs_fork
    def test_portfolio_degrade_identical_under_sharding(self, monkeypatch):
        """With REPRO_SHARDS set and no binaries, portfolio == batched."""
        from repro.solvers import PortfolioSmtBackend

        monkeypatch.setenv("REPRO_SHARDS", "2")
        subs, names, config = _check5("dubins")
        ours = PortfolioSmtBackend(solvers=[]).check(subs, names, config)
        reference = BatchedSmtBackend().check(subs, names, config)
        assert ours.verdict is reference.verdict
        if reference.witness is None:
            assert ours.witness is None
        else:
            np.testing.assert_array_equal(ours.witness, reference.witness)
        assert dataclasses.replace(ours.stats, elapsed_seconds=0.0) == (
            dataclasses.replace(reference.stats, elapsed_seconds=0.0)
        )


# ----------------------------------------------------------------------
# CLI knobs
# ----------------------------------------------------------------------


class TestCli:
    @needs_fork
    def test_verify_shards_flag(self, capsys, tmp_path):
        from repro.api import RunArtifact
        from repro.cli import main

        out_file = tmp_path / "out.json"
        code = main(
            ["verify", "--scenario", "linear", "--engine", "sharded-icp",
             "--shards", "2", "--json", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        artifact = RunArtifact.from_json(out_file.read_text())
        assert artifact.engine == "sharded-icp"
        # The knob stays out of the recorded config (shard invariance).
        assert "shards" not in artifact.config["icp"]

    def test_verify_rejects_bad_shards(self):
        from repro.cli import main
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="shards"):
            main(["verify", "--scenario", "linear", "--shards", "0"])
