"""Generator-LP tests: known Lyapunov ground truth, infeasibility, hygiene."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.barrier import LpConfig, QuadraticTemplate, fit_generator, points_from_traces
from repro.dynamics import stable_linear_system
from repro.errors import InfeasibleLPError, LinearProgramError
from repro.sim import Trace


@pytest.fixture
def stable_system():
    # Hurwitz A with complex eigenvalues: genuinely needs cross terms.
    return stable_linear_system(np.array([[-0.5, 2.0], [-2.0, -0.5]]))


def cloud(rng, n=300, scale=2.0):
    return rng.uniform(-scale, scale, size=(n, 2))


class TestFitGenerator:
    def test_stable_linear_system_fits(self, stable_system, rng):
        tmpl = QuadraticTemplate(2)
        candidate = fit_generator(tmpl, cloud(rng), stable_system)
        assert candidate.margin > 0.0
        p = tmpl.p_matrix(candidate.coefficients)
        # The candidate must be positive definite...
        assert np.linalg.eigvalsh(p).min() > 0.0
        # ...and its Lie derivative negative on fresh samples.
        fresh = cloud(rng, 200)
        lie = candidate.lie_derivative_values(fresh, stable_system)
        assert np.all(lie < 0.0)

    def test_satisfies_lyapunov_inequality_quality(self, stable_system, rng):
        """The fitted W decreases at least as fast as the LP margin."""
        tmpl = QuadraticTemplate(2)
        candidate = fit_generator(tmpl, cloud(rng), stable_system)
        pts = cloud(rng, 100)
        lie = candidate.lie_derivative_values(pts, stable_system)
        norms = (pts**2).sum(axis=1)
        assert np.all(lie <= -candidate.margin * norms + 1e-9)

    def test_unstable_system_infeasible(self, rng):
        unstable = stable_linear_system(np.array([[0.5, 0.0], [0.0, 0.3]]))
        with pytest.raises(InfeasibleLPError):
            fit_generator(QuadraticTemplate(2), cloud(rng), unstable)

    def test_saddle_never_verifies(self, rng):
        """A saddle may slip past the sampled LP (finite evidence), but
        the SMT stage of the full pipeline must refute it — this is the
        division of labor in the paper's Figure 1 loop."""
        from repro.barrier import (
            Rectangle,
            RectangleComplement,
            SynthesisConfig,
            SynthesisStatus,
            VerificationProblem,
            verify_system,
        )

        saddle = stable_linear_system(np.array([[-1.0, 0.0], [0.0, 1.0]]))
        problem = VerificationProblem(
            saddle,
            Rectangle([-0.4, -0.4], [0.4, 0.4]),
            RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
        )
        report = verify_system(
            problem, config=SynthesisConfig(seed=0, max_candidate_iterations=5)
        )
        assert report.status is not SynthesisStatus.VERIFIED

    def test_dimension_check(self, stable_system):
        with pytest.raises(LinearProgramError):
            fit_generator(QuadraticTemplate(3), np.zeros((5, 2)), stable_system)

    def test_all_origin_points_rejected(self, stable_system):
        points = np.zeros((10, 2))
        with pytest.raises(LinearProgramError):
            fit_generator(QuadraticTemplate(2), points, stable_system)

    def test_near_origin_points_filtered_not_fatal(self, stable_system, rng):
        """Converged trace tails (tiny norms) must not corrupt the LP."""
        points = np.vstack([cloud(rng), rng.normal(size=(200, 2)) * 1e-12])
        candidate = fit_generator(QuadraticTemplate(2), points, stable_system)
        assert candidate.margin > 0.0

    def test_max_points_subsampling(self, stable_system, rng):
        config = LpConfig(max_points=50)
        candidate = fit_generator(
            QuadraticTemplate(2), cloud(rng, 5000), stable_system, config
        )
        assert candidate.margin > 0.0

    def test_coefficients_respect_bound(self, stable_system, rng):
        config = LpConfig(coefficient_bound=0.5)
        candidate = fit_generator(
            QuadraticTemplate(2), cloud(rng), stable_system, config
        )
        assert np.all(np.abs(candidate.coefficients) <= 0.5 + 1e-9)

    def test_expression_matches_numeric(self, stable_system, rng):
        from repro.expr import evaluate

        candidate = fit_generator(QuadraticTemplate(2), cloud(rng), stable_system)
        for _ in range(10):
            p = rng.uniform(-2, 2, size=2)
            numeric = float(candidate.w_values(p[None, :])[0])
            symbolic = evaluate(
                candidate.expression, {"x0": float(p[0]), "x1": float(p[1])}
            )
            assert numeric == pytest.approx(symbolic, rel=1e-10, abs=1e-10)

    def test_known_lyapunov_is_feasible_for_lp(self, stable_system, rng):
        """The analytic Lyapunov solution certifies LP feasibility."""
        a = np.array([[-0.5, 2.0], [-2.0, -0.5]])
        p = scipy.linalg.solve_lyapunov(a.T, -np.eye(2))
        # Scale into the coefficient box.
        tmpl = QuadraticTemplate(2)
        coeffs = np.array([p[0, 0], 2 * p[0, 1], p[1, 1]])
        coeffs = coeffs / np.abs(coeffs).max()
        pts = cloud(rng, 200)
        lie = tmpl.gradient(coeffs, pts)
        flows = stable_system.f_batch(pts)
        assert np.all(np.sum(lie * flows, axis=1) < 0.0)


class TestPointsFromTraces:
    def test_stacks_states(self):
        t1 = Trace(np.array([0.0, 1.0]), np.array([[1.0, 2.0], [3.0, 4.0]]))
        t2 = Trace(np.array([0.0, 1.0]), np.array([[5.0, 6.0], [7.0, 8.0]]))
        stacked = points_from_traces([t1, t2])
        assert stacked.shape == (4, 2)

    def test_extra_points_appended(self):
        t1 = Trace(np.array([0.0, 1.0]), np.array([[1.0, 2.0], [3.0, 4.0]]))
        stacked = points_from_traces([t1], extra_points=np.array([[9.0, 9.0]]))
        assert stacked.shape == (3, 2)
        assert [9.0, 9.0] in stacked.tolist()

    def test_empty_raises(self):
        with pytest.raises(LinearProgramError):
            points_from_traces([])
