#!/usr/bin/env python
"""Regenerate Figure 5's phase portrait as ASCII art + numeric summary.

Runs the complete verification for a 10-neuron controller, samples
trajectories across the search domain, and renders the initial set,
unsafe-set boundary, certified ellipsoid, and trajectories in the
(d_err, theta_err) plane — the content of the paper's Figure 5.

Run:  python examples/phase_portrait.py [--neurons N] [--trained]
"""

import argparse

from repro.experiments import format_figure5, render_ascii, run_figure5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trained",
        action="store_true",
        help="train the controller with CMA-ES first (slower)",
    )
    args = parser.parse_args()

    data = run_figure5(
        hidden_neurons=args.neurons,
        seed=args.seed,
        num_trajectories=12,
        trained=args.trained,
    )
    print(format_figure5(data))
    print()
    print("legend: # X0 corners   @ barrier level set   = | safe envelope")
    print("        . trajectory   * start   o end")
    print()
    print(render_ascii(data))


if __name__ == "__main__":
    main()
