"""Plan-compiled FrontierContractor: idempotence and workspace leases.

The deep semantic cross-checks against the scalar contractor live in
``tests/smt/test_hc4_batched.py``; these tests pin the properties the
buffer pool introduces — repeated revises are reproducible, and pooled
scratch state is never shared between live passes.
"""

from __future__ import annotations

import numpy as np

from repro.expr import sin, tanh, var
from repro.intervals import BoxArray
from repro.smt import FrontierContractor
from repro.smt.constraint import ge, le

X, Y = var("x"), var("y")
NAMES = ["x", "y"]

CONSTRAINTS = [
    ge(X * X + Y * Y, 1.0),
    le(2.0 * X - 0.5 * Y + 1.0, 0.0),
    le(tanh(X) * 3.0 + sin(Y), 0.5),
    ge(X * Y - 1.0, 0.0),
]


def frontier(rng, m=23):
    lo = rng.uniform(-2.0, 2.0, (m, 2))
    hi = lo + rng.exponential(0.8, (m, 2))
    return BoxArray(lo, hi)


class TestReviseIdempotence:
    def test_same_frontier_twice_is_identical(self, rng):
        """Two revises of one frontier return bit-identical bounds.

        This is the buffer-pool reuse guarantee: the second call leases
        the workspace the first one released, and no state may leak
        between them.
        """
        for constraint in CONSTRAINTS:
            contractor = FrontierContractor(constraint, NAMES)
            boxes = frontier(rng)
            first, alive_first = contractor.revise(boxes)
            second, alive_second = contractor.revise(boxes)
            np.testing.assert_array_equal(first.lo, second.lo)
            np.testing.assert_array_equal(first.hi, second.hi)
            np.testing.assert_array_equal(alive_first, alive_second)

    def test_interleaved_frontiers_do_not_cross_talk(self, rng):
        """Alternating two frontiers reproduces each one's solo result."""
        contractor = FrontierContractor(CONSTRAINTS[0], NAMES)
        a = frontier(rng, 9)
        b = frontier(rng, 9)
        solo_a = contractor.revise(a)
        solo_b = contractor.revise(b)
        inter_a = contractor.revise(a)
        inter_b = contractor.revise(b)
        np.testing.assert_array_equal(solo_a[0].lo, inter_a[0].lo)
        np.testing.assert_array_equal(solo_a[0].hi, inter_a[0].hi)
        np.testing.assert_array_equal(solo_b[0].lo, inter_b[0].lo)
        np.testing.assert_array_equal(solo_b[0].hi, inter_b[0].hi)


class TestWorkspaceLease:
    def test_live_lease_is_never_shared(self, rng):
        """A revise running while a workspace is leased gets its own.

        Simulates re-entrancy: lease the contractor's workspace by hand
        (as a concurrent revise would) and check revise still produces
        its solo-result bits — proving it did not touch the leased one.
        """
        contractor = FrontierContractor(CONSTRAINTS[2], NAMES)
        boxes = frontier(rng, 8)
        expected_lo, expected_alive = contractor.revise(boxes)

        held = contractor._pool.acquire(len(boxes))
        sentinel = object()
        held.slots[0] = sentinel
        try:
            contracted, alive = contractor.revise(boxes)
        finally:
            assert held.slots[0] is sentinel  # untouched by the revise
            contractor._pool.release(held)
        np.testing.assert_array_equal(contracted.lo, expected_lo.lo)
        np.testing.assert_array_equal(alive, expected_alive)

    def test_bucket_change_keeps_results_stable(self, rng):
        contractor = FrontierContractor(CONSTRAINTS[1], NAMES)
        small = frontier(rng, 5)
        large = frontier(rng, 200)
        before = contractor.revise(small)
        contractor.revise(large)
        after = contractor.revise(small)
        np.testing.assert_array_equal(before[0].lo, after[0].lo)
        np.testing.assert_array_equal(before[0].hi, after[0].hi)
