"""Sweep-runner benchmark: throughput and cache-hit speedup.

Runs a small dubins-family grid (cheap widths/speeds, paper config)
twice against a fresh artifact store: the cold pass measures raw
sweep throughput (scenarios/min across worker processes); the warm pass
must be served entirely from the content-addressed cache and reproduce
the identical aggregate report.

Writes ``benchmarks/results/BENCH_sweep.json``.  Acceptance bars: the
warm pass hits the cache on every point and is >= 20x faster than the
cold pass.
"""

from __future__ import annotations

import json
import time

from repro.api import sweep
from repro.store import ArtifactStore

#: cheap corner of the dubins family: ~1-3s per point on one core
GRID = {"speed": "1:2:3", "nn_width": "8,10"}
WORKERS = 2
HIT_SPEEDUP_BAR = 20.0


def test_sweep_throughput(emit, results_dir, tmp_path):
    store = ArtifactStore(tmp_path / "store")

    t0 = time.perf_counter()
    cold = sweep("dubins", grid=GRID, workers=WORKERS, cache=store)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = sweep("dubins", grid=GRID, workers=WORKERS, cache=store)
    warm_s = time.perf_counter() - t0

    total = cold.total
    cold_rate = total / cold_s * 60.0
    warm_rate = total / warm_s * 60.0 if warm_s > 0 else float("inf")
    hit_rate = warm.cache_hits / warm.total
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    payload = {
        "benchmark": "sweep-runner throughput + cache-hit rate",
        "family": "dubins",
        "grid": GRID,
        "workers": WORKERS,
        "points": total,
        "cold": {
            "wall_seconds": round(cold_s, 4),
            "scenarios_per_minute": round(cold_rate, 2),
            "cache_hits": cold.cache_hits,
            "verified_fraction": cold.verified_fraction,
        },
        "warm": {
            "wall_seconds": round(warm_s, 4),
            "scenarios_per_minute": round(warm_rate, 2),
            "cache_hits": warm.cache_hits,
            "cache_hit_rate": hit_rate,
            "speedup_vs_cold": round(speedup, 1),
        },
        "store": {
            "artifacts": store.stats().artifacts,
            "bytes": store.stats().bytes,
        },
        "hit_speedup_bar": HIT_SPEEDUP_BAR,
    }
    (results_dir / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"dubins sweep, {total} points, {WORKERS} workers:",
        f"  cold  {cold_s:8.2f}s   {cold_rate:8.1f} scenarios/min  "
        f"(hits {cold.cache_hits}/{total})",
        f"  warm  {warm_s:8.2f}s   {warm_rate:8.1f} scenarios/min  "
        f"(hits {warm.cache_hits}/{total}, {speedup:.0f}x)",
        f"  verified fraction: {cold.verified_fraction:.0%}",
    ]
    emit("sweep", "\n".join(lines))

    assert hit_rate == 1.0, f"warm pass missed the cache: {hit_rate:.0%}"
    assert warm.aggregate() == cold.aggregate(), "aggregate drifted on cache hits"
    assert speedup >= HIT_SPEEDUP_BAR, (
        f"cache-hit speedup {speedup:.1f}x below the {HIT_SPEEDUP_BAR}x bar"
    )
